// Package serve is the concurrent query service layer over the hwstar
// engine: it multiplexes many concurrent clients onto one simulated machine
// instead of running every query in isolation. The design operationalizes
// the SharedDB/Crescando argument the keynote builds on — under concurrency,
// the unit of execution should be a shared pass over the data, not a query:
//
//   - clients submit Requests through a bounded intake queue; when the queue
//     is full the server rejects with ErrOverloaded instead of buffering
//     without bound (admission control / backpressure);
//   - scan-shaped requests against the same registered relation are collected
//     for a batching window (or until MaxBatch) and executed as ONE
//     cooperative clock scan (scan.ParallelShared), so memory traffic is paid
//     once per batch rather than once per client;
//   - join/aggregate/query requests flow through the morsel scheduler under a
//     per-server simulated-core budget, so concurrent operations cannot
//     oversubscribe the machine;
//   - every request carries a context.Context honoured end to end: expired
//     deadlines are rejected before execution, and in-flight work stops at
//     the next morsel boundary;
//   - Close drains: queued requests finish, new ones get ErrClosed.
//
// Per-server metrics (queue depth, batch sizes, latencies, modeled cycles
// per query, admission counters) are recorded in a metrics.Registry.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/metrics"
	"hwstar/internal/queries"
	"hwstar/internal/scan"
	"hwstar/internal/sched"
	"hwstar/internal/table"
)

// Op identifies a request kind.
type Op string

// Request kinds.
const (
	OpScan     Op = "scan"      // range-filter SUM over a registered relation (batchable)
	OpJoin     Op = "join"      // parallel equi-join
	OpGroupSum Op = "group-sum" // parallel GROUP BY SUM
	OpQ1       Op = "q1"        // TPC-H-Q1-shaped query over a lineitem table
	OpQ6       Op = "q6"        // TPC-H-Q6-shaped query over a lineitem table
)

// Request is one client query. Set Op and the fields of the matching group;
// the rest stay zero.
type Request struct {
	Op Op

	// OpScan: one range-filter aggregation against the relation registered
	// under Table. Scan requests are the batchable shape — concurrent scans
	// of the same table share one clock-scan pass.
	Table string
	Query scan.Query

	// OpJoin: equi-join input and algorithm ("" or "auto" resolves from the
	// machine's cache hierarchy, as the Engine façade does).
	Join      join.Input
	Algorithm join.Algorithm

	// OpGroupSum: SUM(Vals) GROUP BY Keys with the given strategy.
	Keys, Vals []int64
	Strategy   agg.Strategy

	// OpQ1 / OpQ6: the lineitem table and execution engine.
	Lineitem *table.Table
	Engine   queries.Engine
}

// Response is the server's answer to one Request. The embedded hw.Cost
// reports the modeled cycles attributed to this request: for batched scans
// that is the batch makespan divided by the batch size — the amortization
// that makes sharing worthwhile.
type Response struct {
	hw.Cost

	// BatchSize is the number of requests that shared this execution
	// (1 for unbatched operations).
	BatchSize int

	// Sum is the scan result (OpScan).
	Sum int64

	// Matches and Checksum report the join output (OpJoin).
	Matches  int64
	Checksum uint64

	// Groups is the aggregation result (OpGroupSum).
	Groups map[int64]int64

	// Q1Rows and Revenue are the analytic query results (OpQ1, OpQ6).
	Q1Rows  []queries.Q1Row
	Revenue float64
}

// Options configures a Server.
type Options struct {
	// Workers is the server's simulated-core budget — the maximum number of
	// simulated cores in use across all concurrently executing operations.
	// 0 means all cores of the machine; more than the machine has is an
	// error.
	Workers int
	// OpWorkers is the number of simulated cores one join/aggregate
	// operation runs on. Defaults to half the budget (min 1) so two heavy
	// operations can overlap. Shared-scan batches always use the full
	// budget: one cooperative pass should own the machine.
	OpWorkers int
	// QueueDepth bounds the intake queue; submissions beyond it are
	// rejected with ErrOverloaded. Default 256.
	QueueDepth int
	// BatchWindow is how long the batcher waits, after the first scan
	// request arrives, for more scans to share the pass. Default 500µs.
	BatchWindow time.Duration
	// MaxBatch caps the number of scan requests sharing one pass; reaching
	// it flushes immediately. Default 1024.
	MaxBatch int
}

func (o Options) withDefaults(m *hw.Machine) (Options, error) {
	if o.Workers == 0 {
		o.Workers = m.TotalCores()
	}
	if o.Workers < 0 || o.Workers > m.TotalCores() {
		return o, fmt.Errorf("serve: worker budget %d out of range 1..%d: %w", o.Workers, m.TotalCores(), errs.ErrWorkersOutOfRange)
	}
	if o.OpWorkers == 0 {
		o.OpWorkers = o.Workers / 2
		if o.OpWorkers < 1 {
			o.OpWorkers = 1
		}
	}
	if o.OpWorkers < 0 || o.OpWorkers > o.Workers {
		return o, fmt.Errorf("serve: op workers %d out of range 1..%d: %w", o.OpWorkers, o.Workers, errs.ErrWorkersOutOfRange)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 500 * time.Microsecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	return o, nil
}

// pending is one admitted request waiting for its outcome.
type pending struct {
	ctx  context.Context
	req  Request
	enq  time.Time
	done chan outcome
}

type outcome struct {
	resp Response
	err  error
}

// Server is an admission-controlled, batching query service bound to one
// machine profile. All methods are safe for concurrent use.
type Server struct {
	machine *hw.Machine
	opts    Options
	reg     *metrics.Registry

	intake chan *pending
	sem    chan struct{} // simulated-core tokens; capacity = opts.Workers

	mu     sync.RWMutex // guards closed and tables
	closed bool
	tables map[string]*scan.Relation

	wg sync.WaitGroup // dispatcher + in-flight executors

	// testHold, when non-nil, blocks every executor after it has acquired
	// its core tokens until the channel is closed. Tests use it to pin the
	// pipeline and exercise backpressure deterministically.
	testHold chan struct{}
}

// New starts a server on the given machine profile. The returned server is
// running; stop it with Close.
func New(m *hw.Machine, opts Options) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: %w", errs.ErrNilMachine)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults(m)
	if err != nil {
		return nil, err
	}
	s := &Server{
		machine: m,
		opts:    opts,
		reg:     metrics.NewRegistry(),
		intake:  make(chan *pending, opts.QueueDepth),
		sem:     make(chan struct{}, opts.Workers),
		tables:  make(map[string]*scan.Relation),
	}
	for i := 0; i < opts.Workers; i++ {
		s.sem <- struct{}{}
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Machine returns the server's hardware profile.
func (s *Server) Machine() *hw.Machine { return s.machine }

// Metrics returns the server's metrics registry. Counters:
// serve.admitted, serve.rejected, serve.invalid, serve.completed,
// serve.deadline_exceeded. Histograms: serve.batch_size, serve.latency_ms,
// serve.cycles_per_query. Gauge: serve.queue_depth.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Register makes a columnar relation available to scan requests under the
// given name. Registering an existing name replaces the relation (new
// batches see the new data; a batch in flight finishes on the old).
func (s *Server) Register(name string, cols [][]int64) error {
	rel, err := scan.NewRelation(cols)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("serve: register %q: %w", name, errs.ErrClosed)
	}
	s.tables[name] = rel
	return nil
}

// lookup returns the relation registered under name.
func (s *Server) lookup(name string) (*scan.Relation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rel, ok := s.tables[name]
	return rel, ok
}

// validate rejects malformed requests before they consume queue space.
func (s *Server) validate(req Request) error {
	switch req.Op {
	case OpScan:
		rel, ok := s.lookup(req.Table)
		if !ok {
			return fmt.Errorf("serve: unknown table %q: %w", req.Table, errs.ErrInvalidInput)
		}
		return req.Query.Validate(rel.NumCols())
	case OpJoin:
		switch req.Algorithm {
		case "", "auto", join.AlgNPO, join.AlgRadix:
		default:
			return fmt.Errorf("serve: unknown join algorithm %q: %w", req.Algorithm, errs.ErrInvalidInput)
		}
		return req.Join.Validate()
	case OpGroupSum:
		if len(req.Keys) != len(req.Vals) {
			return fmt.Errorf("serve: keys/vals length mismatch: %d vs %d: %w", len(req.Keys), len(req.Vals), errs.ErrInvalidInput)
		}
		switch req.Strategy {
		case agg.StrategyGlobal, agg.StrategyLocalMerge, agg.StrategyRadix:
			return nil
		default:
			return fmt.Errorf("serve: unknown aggregation strategy %q: %w", req.Strategy, errs.ErrInvalidInput)
		}
	case OpQ1, OpQ6:
		if req.Lineitem == nil {
			return fmt.Errorf("serve: %s needs a lineitem table: %w", req.Op, errs.ErrInvalidInput)
		}
		return nil
	default:
		return fmt.Errorf("serve: unknown op %q: %w", req.Op, errs.ErrInvalidInput)
	}
}

// Submit enqueues one request and blocks until its response, the context's
// end, or rejection. A full intake queue fails fast with ErrOverloaded; a
// closed server with ErrClosed. If ctx ends while the request is queued the
// request is dropped at dispatch; if it ends mid-execution the operation
// stops at the next morsel boundary. In both cases Submit returns the
// context's error.
func (s *Server) Submit(ctx context.Context, req Request) (Response, error) {
	if err := s.validate(req); err != nil {
		s.reg.Counter("serve.invalid").Inc()
		return Response{}, err
	}
	p := &pending{ctx: ctx, req: req, enq: time.Now(), done: make(chan outcome, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Response{}, fmt.Errorf("serve: submit: %w", errs.ErrClosed)
	}
	select {
	case s.intake <- p:
		s.mu.RUnlock()
		s.reg.Counter("serve.admitted").Inc()
		s.reg.Gauge("serve.queue_depth").Set(int64(len(s.intake)))
	default:
		s.mu.RUnlock()
		s.reg.Counter("serve.rejected").Inc()
		return Response{}, fmt.Errorf("serve: intake queue full (%d deep): %w", s.opts.QueueDepth, errs.ErrOverloaded)
	}

	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-ctx.Done():
		// The request may still be dispatched; the dispatcher will observe
		// the dead context and account it then.
		return Response{}, ctx.Err()
	}
}

// Close stops intake and drains: queued requests are still served, then the
// server's goroutines exit. Safe to call once; further calls and further
// Submits return ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: close: %w", errs.ErrClosed)
	}
	s.closed = true
	close(s.intake)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// acquire takes n simulated-core tokens. Only the dispatcher acquires, so
// partial acquisition cannot deadlock against another acquirer; executors
// release as they finish.
func (s *Server) acquire(n int) {
	for i := 0; i < n; i++ {
		<-s.sem
	}
}

func (s *Server) release(n int) {
	for i := 0; i < n; i++ {
		s.sem <- struct{}{}
	}
}

// batch is the scan batch under collection: requests against one relation
// that will share a single clock-scan pass.
type batch struct {
	table string
	rel   *scan.Relation
	reqs  []*pending
}

// dispatch is the server's single intake consumer: it collects scan requests
// into batches and hands every unit of execution to a goroutine only after
// reserving its simulated cores — while it blocks on the reservation, the
// intake queue is the only buffer, which is what makes ErrOverloaded mean
// "the machine is behind", not "a buffer happened to fill".
func (s *Server) dispatch() {
	defer s.wg.Done()
	var cur *batch
	var window <-chan time.Time // nil when no batch is open

	flush := func() {
		if cur == nil {
			return
		}
		b := cur
		cur, window = nil, nil
		s.acquire(s.opts.Workers) // a shared pass owns the whole budget
		s.wg.Add(1)
		go s.runBatch(b)
	}

	for {
		select {
		case p, ok := <-s.intake:
			if !ok {
				flush()
				return
			}
			s.reg.Gauge("serve.queue_depth").Set(int64(len(s.intake)))
			if err := p.ctx.Err(); err != nil {
				s.finish(p, Response{}, fmt.Errorf("serve: dropped before dispatch: %w", err))
				continue
			}
			if p.req.Op != OpScan {
				workers := s.opts.OpWorkers
				if p.req.Op == OpQ1 || p.req.Op == OpQ6 {
					workers = 1 // single-threaded query engines
				}
				s.acquire(workers)
				s.wg.Add(1)
				go s.runOne(p, workers)
				continue
			}
			if cur != nil && cur.table != p.req.Table {
				flush() // a different relation cannot share the pass
			}
			if cur == nil {
				rel, ok := s.lookup(p.req.Table)
				if !ok { // table dropped since validation
					s.finish(p, Response{}, fmt.Errorf("serve: unknown table %q: %w", p.req.Table, errs.ErrInvalidInput))
					continue
				}
				cur = &batch{table: p.req.Table, rel: rel}
				window = time.After(s.opts.BatchWindow)
			}
			cur.reqs = append(cur.reqs, p)
			if len(cur.reqs) >= s.opts.MaxBatch {
				flush()
			}
		case <-window:
			flush()
		}
	}
}

// runBatch executes one shared clock scan for every live request of the
// batch and distributes per-query results. The modeled cost attributed to
// each request is the batch makespan divided by the batch size.
func (s *Server) runBatch(b *batch) {
	defer s.wg.Done()
	defer s.release(s.opts.Workers)
	if c := s.testHold; c != nil {
		<-c
	}

	live := make([]*pending, 0, len(b.reqs))
	for _, p := range b.reqs {
		if err := p.ctx.Err(); err != nil {
			s.finish(p, Response{}, fmt.Errorf("serve: dropped from batch: %w", err))
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	qs := make([]scan.Query, len(live))
	for i, p := range live {
		qs[i] = p.req.Query
	}
	sch, err := sched.New(s.machine, sched.Options{Workers: s.opts.Workers, Stealing: true})
	if err == nil {
		var sums []int64
		var schedRes sched.Result
		// The batch runs for all its members; individual deadlines were
		// honoured at collection time. Batch members share fate from here.
		sums, schedRes, err = scan.ParallelShared(context.Background(), b.rel, qs, scan.SharedOptions{UseQueryIndex: true}, sch, 0)
		if err == nil {
			per := schedRes.MakespanCycles / float64(len(live))
			s.reg.Histogram("serve.batch_size").Record(float64(len(live)))
			s.reg.Histogram("serve.cycles_per_query").Record(per)
			for i, p := range live {
				s.finish(p, Response{Cost: hw.Cost{SimCycles: per}, BatchSize: len(live), Sum: sums[i]}, nil)
			}
			return
		}
	}
	for _, p := range live {
		s.finish(p, Response{}, err)
	}
}

// runOne executes one non-batchable request on its reserved cores.
func (s *Server) runOne(p *pending, workers int) {
	defer s.wg.Done()
	defer s.release(workers)
	if c := s.testHold; c != nil {
		<-c
	}
	if err := p.ctx.Err(); err != nil {
		s.finish(p, Response{}, fmt.Errorf("serve: dropped before execution: %w", err))
		return
	}
	resp, err := s.execute(p.ctx, p.req, workers)
	if err == nil {
		s.reg.Histogram("serve.cycles_per_query").Record(resp.SimCycles)
	}
	s.finish(p, resp, err)
}

// execute runs one join/aggregate/query request under the client's context.
func (s *Server) execute(ctx context.Context, req Request, workers int) (Response, error) {
	switch req.Op {
	case OpJoin:
		sch, err := sched.New(s.machine, sched.Options{Workers: workers, Stealing: true})
		if err != nil {
			return Response{}, err
		}
		algo := req.Algorithm
		if algo == "" || algo == "auto" {
			if int64(len(req.Join.BuildKeys))*34 > s.machine.LLC().SizeBytes {
				algo = join.AlgRadix
			} else {
				algo = join.AlgNPO
			}
		}
		var res join.ParallelResult
		if algo == join.AlgRadix {
			res, err = join.ParallelRadix(ctx, req.Join, join.RadixOptions{}, sch, s.machine, 0)
		} else {
			res, err = join.ParallelNPO(ctx, req.Join, sch, 0)
		}
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: res.MakespanCycles}, BatchSize: 1, Matches: res.Matches, Checksum: res.Checksum}, nil
	case OpGroupSum:
		sch, err := sched.New(s.machine, sched.Options{Workers: workers, Stealing: true})
		if err != nil {
			return Response{}, err
		}
		res, err := agg.Parallel(ctx, req.Keys, req.Vals, req.Strategy, sch, s.machine, 0)
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: res.MakespanCycles}, BatchSize: 1, Groups: res.Groups}, nil
	case OpQ1:
		acct := hw.NewAccount(s.machine, hw.DefaultContext())
		rows, err := queries.Q1(req.Engine, req.Lineitem, queries.DefaultQ1(), acct)
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: acct.TotalCycles()}, BatchSize: 1, Q1Rows: rows}, nil
	case OpQ6:
		acct := hw.NewAccount(s.machine, hw.DefaultContext())
		rev, err := queries.Q6(req.Engine, req.Lineitem, queries.DefaultQ6(), acct)
		if err != nil {
			return Response{}, err
		}
		return Response{Cost: hw.Cost{SimCycles: acct.TotalCycles()}, BatchSize: 1, Revenue: rev}, nil
	default:
		return Response{}, fmt.Errorf("serve: unknown op %q: %w", req.Op, errs.ErrInvalidInput)
	}
}

// finish delivers the outcome and accounts it: context-terminated requests
// count as deadline-exceeded, successful ones record completion latency.
func (s *Server) finish(p *pending, resp Response, err error) {
	switch {
	case err == nil:
		s.reg.Counter("serve.completed").Inc()
		s.reg.Histogram("serve.latency_ms").Record(float64(time.Since(p.enq).Microseconds()) / 1000)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("serve.deadline_exceeded").Inc()
	}
	p.done <- outcome{resp: resp, err: err}
}
