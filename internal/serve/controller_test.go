package serve

import (
	"math"
	"sync"
	"testing"

	"hwstar/internal/compress"
)

// convexCost is a deterministic synthetic workload: cost is convex in both
// knobs with a unique optimum inside the grid, so the hill climber has a
// well-defined target.
func convexCost(morsel, width int) float64 {
	m := math.Log2(float64(morsel) / float64(32*compress.BlockValues))
	w := math.Log2(float64(width) / 32)
	return 10 + m*m + w*w
}

// TestControllerConverges feeds the controller a steady convex workload and
// checks that it (a) reaches the grid optimum for both knobs, (b) reports
// convergence, and (c) never accepts a retune that raises the measured cost
// — monotone convergence.
func TestControllerConverges(t *testing.T) {
	c := newVecController(0, 0, true)
	lastAccepted := math.Inf(1)
	var retunes int64
	for i := 0; i < 500 && !c.Stats().Converged; i++ {
		cost := convexCost(c.MorselRows(), c.BatchWidth())
		// Observe scales cost by rows*queries; feed it unit work so the
		// measured cost is exactly convexCost.
		c.Observe(1, 1, cost)
		if st := c.Stats(); st.Retunes > retunes {
			retunes = st.Retunes
			now := convexCost(st.MorselRows, st.BatchWidth)
			if now > lastAccepted {
				t.Fatalf("retune %d raised cost: %v -> %v", retunes, lastAccepted, now)
			}
			lastAccepted = now
		}
	}
	st := c.Stats()
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	if st.MorselRows != 32*compress.BlockValues {
		t.Fatalf("morsel rows %d, want %d", st.MorselRows, 32*compress.BlockValues)
	}
	if st.BatchWidth != 32 {
		t.Fatalf("batch width %d, want 32", st.BatchWidth)
	}
	if st.Retunes == 0 {
		t.Fatal("converged without ever retuning (started at the optimum?)")
	}
}

// TestControllerPinnedWhenNotAdaptive checks that adaptive=false keeps the
// configured settings fixed no matter what costs are observed.
func TestControllerPinnedWhenNotAdaptive(t *testing.T) {
	c := newVecController(4*compress.BlockValues, 16, false)
	for i := 0; i < 100; i++ {
		c.Observe(1000, 10, float64(1000000*(i+1)))
	}
	st := c.Stats()
	if st.MorselRows != 4*compress.BlockValues || st.BatchWidth != 16 {
		t.Fatalf("pinned controller moved: %+v", st)
	}
	if st.Converged {
		t.Fatal("pinned controller claims convergence")
	}
	if st.Observations != 100 {
		t.Fatalf("observations %d, want 100", st.Observations)
	}
}

// TestControllerConcurrentObserve hammers Observe from many goroutines while
// readers spin on MorselRows/BatchWidth/Stats — run under -race this checks
// the hot-path reads are torn-free, and it asserts the published settings
// are always valid grid points.
func TestControllerConcurrentObserve(t *testing.T) {
	c := newVecController(0, 0, true)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, w := c.MorselRows(), c.BatchWidth()
				if m < vecMorselMin || m > vecMorselMax || m%compress.BlockValues != 0 {
					t.Errorf("torn/invalid morsel rows: %d", m)
					return
				}
				if w < vecWidthMin || w > vecWidthMax {
					t.Errorf("torn/invalid batch width: %d", w)
					return
				}
				_ = c.Stats()
			}
		}()
	}
	var wwg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for j := 0; j < perWriter; j++ {
				c.Observe(4096, 8, float64(1000+(i*perWriter+j)%97))
			}
		}()
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	if got := c.Stats().Observations; got != writers*perWriter {
		t.Fatalf("observations %d, want %d", got, writers*perWriter)
	}
}
