package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/scan"
	"hwstar/internal/workload"
)

// TestRetryRecoversTransient stages "fails twice, then recovers": a budget
// of two injected transient failures against a retry budget of three. The
// client sees a correct answer; the retry counters see the two attempts.
func TestRetryRecoversTransient(t *testing.T) {
	cols, expect := testRelation(5000)
	s := newServer(t, Options{
		QueueDepth: 8, MaxBatch: 1,
		Faults:       fault.New(fault.Config{Seed: 3, TransientProb: 1, MaxFaults: 2}),
		MaxRetries:   3,
		RetryBackoff: 10 * time.Microsecond,
	})
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Submit(context.Background(), Request{
		Op: OpScan, Table: "events",
		Query: scanQuery(0, 5000),
	})
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if want := expect(0, 5000); resp.Sum != want {
		t.Fatalf("sum = %d, want %d", resp.Sum, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.Retries != 2 {
		t.Fatalf("retries = %d, want 2", h.Retries)
	}
	if h.RetryExhausted != 0 {
		t.Fatalf("retry budget reported exhausted: %+v", h)
	}
	if h.Faults["transient"] != 2 {
		t.Fatalf("fault log disagrees: %v", h.Faults)
	}
	if bh := s.Metrics().Histogram("serve.retry_backoff_ms"); bh.Count() != 2 {
		t.Fatalf("backoff histogram has %d samples, want 2", bh.Count())
	}
}

// TestRetryExhausted caps retries below the injected failure budget: the
// typed transient error must reach the client.
func TestRetryExhausted(t *testing.T) {
	cols, _ := testRelation(1000)
	s := newServer(t, Options{
		QueueDepth: 8, MaxBatch: 1,
		Faults:       fault.New(fault.Config{Seed: 3, TransientProb: 1}),
		MaxRetries:   2,
		RetryBackoff: 10 * time.Microsecond,
	})
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(context.Background(), Request{Op: OpScan, Table: "events", Query: scanQuery(0, 1000)})
	if !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.RetryExhausted != 1 || h.Retries != 2 {
		t.Fatalf("health = %+v, want 2 retries then exhaustion", h)
	}
}

// TestPanicIsolationInServer recovers an injected worker panic inside the
// scheduler — the client never sees it, and the health counters do.
func TestPanicIsolationInServer(t *testing.T) {
	cols, expect := testRelation(5000)
	s := newServer(t, Options{
		QueueDepth: 8, MaxBatch: 1,
		Faults:        fault.New(fault.Config{Seed: 3, PanicProb: 1, MaxFaults: 1}),
		IsolatePanics: true,
	})
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Submit(context.Background(), Request{Op: OpScan, Table: "events", Query: scanQuery(0, 5000)})
	if err != nil {
		t.Fatalf("panic not isolated: %v", err)
	}
	if want := expect(0, 5000); resp.Sum != want {
		t.Fatalf("sum = %d, want %d", resp.Sum, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.PanicsRecovered != 1 || h.Redispatched == 0 {
		t.Fatalf("health = %+v, want 1 recovered panic with re-dispatch", h)
	}
}

// TestBreakerTripsShedsAndRecovers walks the full breaker cycle: two
// injected failures trip it, a non-scan request is shed with ErrDegraded, a
// scan still runs on the degraded worker budget, and its success closes the
// breaker again.
func TestBreakerTripsShedsAndRecovers(t *testing.T) {
	cols, expect := testRelation(5000)
	s := newServer(t, Options{
		Workers: 8, OpWorkers: 4, QueueDepth: 8, MaxBatch: 1,
		Faults:           fault.New(fault.Config{Seed: 3, TransientProb: 1, MaxFaults: 2}),
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // recovery must come from the degraded scan, not time
		DegradedWorkers:  2,
	})
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	keys := workload.UniformInts(81, 4096, 64)
	vals := workload.UniformInts(82, 4096, 100)
	group := Request{Op: OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyRadix}

	// Two consecutive failures (MaxRetries=0: nothing absorbs them).
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), group); !errors.Is(err, errs.ErrTransient) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	h := s.Health()
	if h.State != "degraded" || h.BreakerTrips != 1 || h.ConsecutiveFailures != 2 {
		t.Fatalf("breaker did not trip: %+v", h)
	}

	// Open breaker: non-scan work sheds...
	if _, err := s.Submit(context.Background(), group); !errors.Is(err, errs.ErrDegraded) {
		t.Fatalf("open breaker did not shed: %v", err)
	}
	// ...but a scan still runs, on the reduced budget (the fault budget is
	// spent, so it succeeds) — and its success closes the breaker.
	resp, err := s.Submit(context.Background(), Request{Op: OpScan, Table: "events", Query: scanQuery(0, 5000)})
	if err != nil {
		t.Fatalf("degraded scan failed: %v", err)
	}
	if want := expect(0, 5000); resp.Sum != want {
		t.Fatalf("degraded scan sum = %d, want %d", resp.Sum, want)
	}
	h = s.Health()
	if h.DegradedScans == 0 {
		t.Fatalf("scan did not run degraded: %+v", h)
	}
	if h.State != "ok" {
		t.Fatalf("success did not close the breaker: %+v", h)
	}
	// Closed again: non-scan work flows.
	if _, err := s.Submit(context.Background(), group); err != nil {
		t.Fatalf("recovered breaker still shedding: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); h.Shed != 1 {
		t.Fatalf("shed = %d, want 1", h.Shed)
	}
}

// TestBreakerHalfOpenProbe trips the breaker and waits out the cooldown: the
// next non-scan request is admitted as a half-open probe and, succeeding,
// closes the breaker.
func TestBreakerHalfOpenProbe(t *testing.T) {
	s := newServer(t, Options{
		Workers: 8, OpWorkers: 4, QueueDepth: 8,
		Faults:           fault.New(fault.Config{Seed: 3, TransientProb: 1, MaxFaults: 2}),
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Millisecond,
	})
	keys := workload.UniformInts(83, 4096, 64)
	vals := workload.UniformInts(84, 4096, 100)
	group := Request{Op: OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyRadix}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), group); !errors.Is(err, errs.ErrTransient) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if _, err := s.Submit(context.Background(), group); !errors.Is(err, errs.ErrDegraded) {
		t.Fatalf("open breaker did not shed: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Submit(context.Background(), group); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if h := s.Health(); h.State != "ok" {
		t.Fatalf("probe success did not close the breaker: %+v", h)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRequestDeadline bounds clients that set no deadline of their own.
func TestRequestDeadline(t *testing.T) {
	s := newServer(t, Options{
		Workers: 4, OpWorkers: 4, QueueDepth: 8,
		RequestDeadline: 10 * time.Millisecond,
	})
	hold := make(chan struct{})
	s.testHold = hold
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{
			Op: OpGroupSum, Keys: []int64{1, 2}, Vals: []int64{3, 4}, Strategy: agg.StrategyGlobal,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server deadline never fired")
	}
	close(hold)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// scanQuery is shorthand for the range-sum the tests use.
func scanQuery(lo, hi int64) scan.Query {
	return scan.Query{FilterCol: 0, Lo: lo, Hi: hi, AggCol: 1}
}

// TestChaosMix is the race-enabled chaos test: a concurrent mixed workload
// under seeded panics, stragglers, and transient failures. Every admitted
// query must complete with the correct result or fail with a typed error —
// no hangs, no unrecovered panics — and the fault log must prove each armed
// class actually fired.
func TestChaosMix(t *testing.T) {
	const clients = 48
	cols, expect := testRelation(20000)
	inj := fault.New(fault.Config{
		Seed:          11,
		PanicProb:     0.02,
		TransientProb: 0.02,
		StragglerProb: 0.15,
		StragglerSkew: 8,
	})
	s := newServer(t, Options{
		Workers: 8, OpWorkers: 4, QueueDepth: clients, MaxBatch: 4,
		BatchWindow:        time.Millisecond,
		Faults:             inj,
		MaxRetries:         4,
		RetryBackoff:       10 * time.Microsecond,
		IsolatePanics:      true,
		StragglerThreshold: 3,
		SchedBlockSize:     4,
	})
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	keys := workload.UniformInts(85, 8192, 128)
	vals := workload.UniformInts(86, 8192, 100)
	var wantGroups map[int64]int64
	{
		wantGroups = make(map[int64]int64)
		for i, k := range keys {
			wantGroups[k] += vals[i]
		}
	}

	type result struct {
		scan bool
		lo   int64
		resp Response
		err  error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c%3 == 2 {
				resp, err := s.Submit(context.Background(), Request{
					Op: OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyRadix,
				})
				results[c] = result{resp: resp, err: err}
				return
			}
			lo := int64(c * 100)
			resp, err := s.Submit(context.Background(), Request{
				Op: OpScan, Table: "events", Query: scanQuery(lo, lo+3000),
			})
			results[c] = result{scan: true, lo: lo, resp: resp, err: err}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	completed := 0
	for c, r := range results {
		if r.err != nil {
			// Failures must be typed — anything else is an escape.
			if !errors.Is(r.err, errs.ErrTransient) && !errors.Is(r.err, errs.ErrWorkerPanic) &&
				!errors.Is(r.err, errs.ErrDegraded) && !errors.Is(r.err, errs.ErrOverloaded) {
				t.Fatalf("client %d: untyped failure: %v", c, r.err)
			}
			continue
		}
		completed++
		if r.scan {
			if want := expect(r.lo, r.lo+3000); r.resp.Sum != want {
				t.Fatalf("client %d: scan sum %d, want %d", c, r.resp.Sum, want)
			}
		} else {
			for k, want := range wantGroups {
				if r.resp.Groups[k] != want {
					t.Fatalf("client %d: group %d = %d, want %d", c, k, r.resp.Groups[k], want)
				}
			}
		}
	}
	if completed == 0 {
		t.Fatal("chaos completed nothing")
	}
	counts := inj.Counts()
	for _, class := range []fault.Class{fault.ClassPanic, fault.ClassTransient, fault.ClassStraggler} {
		if counts[class] == 0 {
			t.Fatalf("fault class %q never fired: %v", class, counts)
		}
	}
	h := s.Health()
	if h.Retries == 0 && h.PanicsRecovered == 0 && h.StragglersRetired == 0 {
		t.Fatalf("resilience machinery never engaged: %+v", h)
	}
}

// TestNoGoroutineLeaks runs a faulty workload including sheds, deadlines,
// and retries, closes the server, and checks the goroutine count settles
// back to where it started.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		cols, _ := testRelation(2000)
		s := newServer(t, Options{
			Workers: 4, OpWorkers: 4, QueueDepth: 4, MaxBatch: 2,
			BatchWindow:      time.Millisecond,
			Faults:           fault.New(fault.Config{Seed: int64(round), TransientProb: 0.2}),
			MaxRetries:       2,
			RetryBackoff:     10 * time.Microsecond,
			RequestDeadline:  50 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Millisecond,
			IsolatePanics:    true,
		})
		if err := s.Register("events", cols); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 16; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				if c%2 == 0 {
					s.Submit(context.Background(), Request{Op: OpScan, Table: "events", Query: scanQuery(0, 2000)})
				} else {
					s.Submit(context.Background(), Request{
						Op: OpGroupSum, Keys: []int64{1, 2, 3}, Vals: []int64{4, 5, 6}, Strategy: agg.StrategyRadix,
					})
				}
			}()
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Give exiting goroutines a moment to unwind before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
