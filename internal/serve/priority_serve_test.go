package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"hwstar/internal/agg"
	"hwstar/internal/scan"
	"hwstar/internal/workload"
)

func TestPriorityLanes(t *testing.T) {
	cases := []struct {
		p     Priority
		lane  string
		batch bool
	}{
		{"", "interactive", false},
		{PriorityInteractive, "interactive", false},
		{PriorityBatch, "batch", true},
		{"weird", "interactive", false}, // unknown classes degrade to interactive
	}
	for _, c := range cases {
		if got := c.p.Lane(); got != c.lane {
			t.Errorf("Priority(%q).Lane() = %q, want %q", c.p, got, c.lane)
		}
		if got := c.p.batchClass(); got != c.batch {
			t.Errorf("Priority(%q).batchClass() = %v, want %v", c.p, got, c.batch)
		}
	}
}

// TestCoreSemBatchCap pins the token-pool invariants directly: batch-class
// work can never hold more than batchCap tokens, and interactive work can
// start on the reserved tokens without waiting for a batch drain.
func TestCoreSemBatchCap(t *testing.T) {
	c := newCoreSem(8, 2)

	if !c.tryAcquireBatch(2) {
		t.Fatal("batch acquire within cap refused")
	}
	if c.tryAcquireBatch(1) {
		t.Fatal("batch acquire past cap granted")
	}

	// Interactive wants all 8 but batch holds 2: acquireUpTo must take the 6
	// free tokens immediately rather than blocking for a full drain.
	if got := c.acquireUpTo(6, 8); got != 6 {
		t.Fatalf("acquireUpTo(6,8) with 2 held = %d, want 6", got)
	}
	// Pool empty: a lo=1 acquisition must block until a release.
	done := make(chan int)
	go func() { done <- c.acquireUpTo(1, 4) }()
	select {
	case n := <-done:
		t.Fatalf("acquireUpTo returned %d from an empty pool", n)
	case <-time.After(20 * time.Millisecond):
	}
	c.release(2, true) // batch done: frees 2, batchHeld back to 0
	if n := <-done; n != 2 {
		t.Fatalf("acquireUpTo after release = %d, want 2 (everything free, capped at hi=4 but only 2 exist)", n)
	}

	// hi caps the take even when more is free.
	c.release(6, false)
	c.release(2, false)
	if got := c.acquireUpTo(1, 3); got != 3 {
		t.Fatalf("acquireUpTo(1,3) with 8 free = %d, want 3", got)
	}
}

// TestInteractiveNotBlockedByBatchHold stages the starvation scenario the
// priority lanes exist to prevent: a batch operation holds its cores
// mid-execution, and an interactive scan must still reach execution on the
// reserved cores. Before acquireUpTo, the interactive pass demanded the full
// worker budget and would sit behind the batch hold for its entire runtime.
func TestInteractiveNotBlockedByBatchHold(t *testing.T) {
	cols, expect := testRelation(10000)
	s := newServer(t, Options{
		Workers:            8,
		QueueDepth:         16,
		BatchQueueDepth:    16,
		MaxBatch:           4,
		BatchWindow:        100 * time.Microsecond,
		InteractiveReserve: 6,
	})
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	s.testHold = hold

	keys := workload.UniformInts(91, 2000, 64)
	vals := workload.UniformInts(92, 2000, 50)

	var wg sync.WaitGroup
	wg.Add(2)
	var batchErr, intErr error
	var intResp Response
	go func() {
		defer wg.Done()
		_, batchErr = s.Submit(context.Background(), Request{
			Op: OpGroupSum, Keys: keys, Vals: vals, Strategy: agg.StrategyLocalMerge,
			Priority: PriorityBatch, Tenant: "noisy",
		})
	}()

	// Wait until the batch operation holds its cores (blocked in testHold).
	waitFor(t, func() bool {
		s.cores.mu.Lock()
		defer s.cores.mu.Unlock()
		return s.cores.batchHeld > 0
	}, "batch operation never acquired cores")

	go func() {
		defer wg.Done()
		intResp, intErr = s.Submit(context.Background(), Request{
			Op: OpScan, Table: "events",
			Query:  scan.Query{FilterCol: 0, Lo: 100, Hi: 900, AggCol: 1},
			Tenant: "polite",
		})
	}()

	// The interactive pass must reach execution while the batch cores are
	// still held: all remaining tokens get taken (free drops to 0). With a
	// full-budget blocking acquire this never happens and the test times out
	// here.
	waitFor(t, func() bool {
		s.cores.mu.Lock()
		defer s.cores.mu.Unlock()
		return s.cores.free == 0 && s.cores.batchHeld > 0
	}, "interactive scan did not start while batch held cores")

	close(hold)
	wg.Wait()
	if batchErr != nil || intErr != nil {
		t.Fatalf("batch err=%v interactive err=%v", batchErr, intErr)
	}
	if want := expect(100, 900); intResp.Sum != want {
		t.Fatalf("interactive sum %d, want %d", intResp.Sum, want)
	}

	// Tenant attribution followed both requests through the engine.
	if th := s.TenantHealth("noisy"); th.Admitted != 1 || th.Completed != 1 {
		t.Fatalf("noisy tenant health: %+v", th)
	}
	if th := s.TenantHealth("polite"); th.Admitted != 1 || th.Completed != 1 {
		t.Fatalf("polite tenant health: %+v", th)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantHealthBreakdown drives labelled traffic and checks the per-tenant
// health snapshot and metrics registry dimensions.
func TestTenantHealthBreakdown(t *testing.T) {
	cols, _ := testRelation(10000)
	s := newServer(t, Options{QueueDepth: 64})
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(ctx, Request{
			Op: OpScan, Table: "events",
			Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 1000, AggCol: 1}, Tenant: "a",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(ctx, Request{Op: OpScan, Table: "missing", Tenant: "b"}); err == nil {
		t.Fatal("scan of unknown table succeeded")
	}

	h := s.Health()
	ta, ok := h.Tenants["a"]
	if !ok {
		t.Fatalf("health has no tenant a: %+v", h.Tenants)
	}
	if ta.Admitted != 3 || ta.Completed != 3 || ta.Failed != 0 {
		t.Fatalf("tenant a health: %+v", ta)
	}
	if ta.LatencyMs.Count != 3 || ta.LatencyMs.P50 <= 0 {
		t.Fatalf("tenant a latency stats: %+v", ta.LatencyMs)
	}
	tb := h.Tenants["b"]
	if tb.Invalid != 1 {
		t.Fatalf("tenant b health: %+v", tb)
	}
	// Unknown tenants read as zero, not as a panic or an invented entry.
	if th := s.TenantHealth("nope"); th.Admitted != 0 {
		t.Fatalf("unknown tenant health: %+v", th)
	}
	// The flat registry carries the same dimensions for /metrics exposition.
	ctrs := s.Metrics().Counters()
	if ctrs["serve.tenant.a.completed"] != 3 {
		t.Fatalf("tenant counter missing: %v", ctrs)
	}
}
