// The vectorized, compression-aware scan path: shared scan batches execute
// batch-at-a-time over selection vectors directly on FOR/RLE-compressed
// columns, decode-on-demand priced through the hw model (the E12
// compute-for-bandwidth trade, in the production path). Per block and
// query the pass consults the stored zone map first — a miss skips the
// block for the price of its header, a full match folds in a
// precomputed block sum without touching the payload — and only
// range-straddling blocks decode into an L1-resident buffer for the
// vectorized filter + gather. Morsel size and query-group width come from
// the online controller (controller.go).

package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"hwstar/internal/compress"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/sched"
	"hwstar/internal/trace"
	"hwstar/internal/vecexec"
)

// vecDispatchCycles is the modeled fixed overhead of one vectorized morsel
// task: dispatch, queue handoff, cache warmup. It is what makes morsel
// size a real trade-off — many small morsels pay it often, few huge ones
// imbalance the workers — and thus what the controller tunes against
// (E2b's dispatchCycles, live).
const vecDispatchCycles = 2000

// zoneCheckCycles and fastSumCycles price the per-(block, query) zone-map
// comparison and the precomputed-sum fold; decodeTupleCycles matches the
// compressed ScanWork decode price.
const (
	zoneCheckCycles   = 1.0
	fastSumCycles     = 2.0
	decodeTupleCycles = 4.0
)

// vecTable is a registered relation encoded for the vectorized path: every
// column FOR/RLE-compressed, plus per-block sums per column so a zone-map
// full match aggregates a block in O(1) without decoding it.
type vecTable struct {
	cols []*compress.Compressed
	sums [][]int64 // [col][block]: whole-block sums
	rows int
}

// newVecTable encodes cols into the vectorized representation.
func newVecTable(cols [][]int64) *vecTable {
	vt := &vecTable{cols: make([]*compress.Compressed, len(cols)), sums: make([][]int64, len(cols))}
	if len(cols) > 0 {
		vt.rows = len(cols[0])
	}
	var buf [compress.BlockValues]int64
	for ci, col := range cols {
		c := compress.Encode(col)
		vt.cols[ci] = c
		sums := make([]int64, c.NumBlocks())
		for b := range sums {
			sums[b], _ = c.SumBlockSel(b, nil, buf[:])
		}
		vt.sums[ci] = sums
	}
	return vt
}

// ratio returns the table-wide compression ratio (raw/compressed bytes).
func (vt *vecTable) ratio() float64 {
	var raw, comp int64
	for _, c := range vt.cols {
		raw += c.RawBytes()
		comp += c.Bytes()
	}
	if comp == 0 {
		return 1
	}
	return float64(raw) / float64(comp)
}

// vecPassStats aggregates one pass's block outcomes across tasks. Tasks
// fold their local counts in once at morsel end — no atomics in the block
// loop.
type vecPassStats struct {
	pruned   atomic.Int64 // zone map missed the predicate: header-only
	fastSums atomic.Int64 // zone map proved a full match: O(1) fold
	scanned  atomic.Int64 // payload decoded and filtered
}

// vecSharedScan runs the query batch against vt, sharing the pass
// Crescando-style but block-at-a-time on the compressed form: rows are
// split into block-aligned morsels, and each morsel task streams its blocks
// once for the WHOLE batch — a straddling block is decoded at most once per
// pass and every query evaluates it while it is cache-hot. Within a block,
// queries run in width-sized groups so only width accumulators are live at
// a time. Results are exact — identical to the row-at-a-time path.
func (s *Server) vecSharedScan(ctx context.Context, vt *vecTable, queries []scan.Query, sch *sched.Scheduler) ([]int64, sched.Result, error) {
	out := make([]int64, len(queries))
	if len(queries) == 0 || vt.rows == 0 {
		return out, sched.Result{}, nil
	}
	morsel := snapToBlocks(s.ctl.MorselRows())
	width := s.ctl.BatchWidth()
	if width < 1 {
		width = 1
	}
	nSegs := (vt.rows + morsel - 1) / morsel
	partials := make([][]int64, nSegs)
	var stats vecPassStats

	tasks := sched.MorselsAligned(vt.rows, morsel, compress.BlockValues, "vec-scan",
		func(start, end int, w *sched.Worker) {
			partials[start/morsel] = vecScanMorsel(vt, queries, width, start, end, w, &stats)
		})

	ps := trace.FromContext(ctx).Child("vec-scan")
	ps.SetAttr("queries", fmt.Sprintf("%d", len(queries)))
	ps.SetAttr("morsel_rows", fmt.Sprintf("%d", morsel))
	ps.SetAttr("batch_width", fmt.Sprintf("%d", width))
	schedRes, err := sch.RunContext(trace.NewContext(ctx, ps), tasks)
	ps.AddCycles(schedRes.MakespanCycles)
	ps.End()

	s.reg.Counter("serve.vec_blocks_pruned").Add(stats.pruned.Load())
	s.reg.Counter("serve.vec_block_fast_sums").Add(stats.fastSums.Load())
	s.reg.Counter("serve.vec_blocks_scanned").Add(stats.scanned.Load())
	if err != nil {
		return nil, schedRes, err
	}

	for _, p := range partials {
		for i, v := range p {
			out[i] += v
		}
	}

	s.reg.Counter("serve.vec_passes").Inc()
	s.ctl.Observe(vt.rows, len(queries), schedRes.MakespanCycles)
	s.reg.Gauge("serve.vec_morsel_rows").Set(int64(s.ctl.MorselRows()))
	s.reg.Gauge("serve.vec_batch_width").Set(int64(s.ctl.BatchWidth()))
	return out, schedRes, nil
}

// vecScanMorsel evaluates the whole query batch over one block-aligned
// morsel, returning per-query partial sums. The loop is block-major: each
// block's zone map is consulted for every query, and a block that any query
// straddles is decoded at most once per column for the entire batch — every
// straddling query filters it while it is L1-resident. Queries advance in
// width-sized groups so at most width accumulators are live at a time. The
// inner loop is allocation-free: the decode buffers and selection vector
// live on the stack and are reused across blocks, and all hardware cost is
// accumulated into one Work charged at morsel end.
func vecScanMorsel(vt *vecTable, queries []scan.Query, width, start, end int, w *sched.Worker, stats *vecPassStats) []int64 {
	out := make([]int64, len(queries))
	var fbuf, abuf [compress.BlockValues]int64
	sel := make(vecexec.Sel, 0, compress.BlockValues)

	var pruned, fastSums, scannedBlocks int64
	var zoneChecks, decodedTuples, evalTuples, gatherTuples int64
	var hdrBytes, payloadBytes int64

	firstBlk := start / compress.BlockValues
	nBlocks := vt.cols[0].NumBlocks()
	for blk := firstBlk; blk < nBlocks && vt.cols[0].BlockStart(blk) < end; blk++ {
		hdrBytes += compress.BlockHeaderBytes
		fCached, aCached := -1, -1
		blockScanned := false
		for g0 := 0; g0 < len(queries); g0 += width {
			g1 := g0 + width
			if g1 > len(queries) {
				g1 = len(queries)
			}
			for qi := g0; qi < g1; qi++ {
				q := &queries[qi]
				fcol := vt.cols[q.FilterCol]
				zoneChecks++
				bmin, bmax := fcol.BlockRange(blk)
				if bmin > q.Hi || bmax < q.Lo {
					pruned++
					continue
				}
				if bmin >= q.Lo && bmax <= q.Hi {
					out[qi] += vt.sums[q.AggCol][blk]
					fastSums++
					continue
				}
				// Range straddles the block: decode on demand, once per
				// block per column for the whole batch.
				n := fcol.BlockLen(blk)
				if fCached != q.FilterCol {
					fcol.DecodeBlock(blk, fbuf[:])
					fCached = q.FilterCol
					payloadBytes += fcol.BlockBytes(blk)
					decodedTuples += int64(n)
				}
				sel = vecexec.RangeFilterI64(fbuf[:n], q.Lo, q.Hi, nil, sel[:0])
				evalTuples += int64(n)
				blockScanned = true
				if len(sel) == 0 {
					continue
				}
				acol := vt.cols[q.AggCol]
				if aCached != q.AggCol {
					acol.DecodeBlock(blk, abuf[:])
					aCached = q.AggCol
					payloadBytes += acol.BlockBytes(blk)
					decodedTuples += int64(n)
				}
				out[qi] += vecexec.SumI64(abuf[:n], sel)
				gatherTuples += int64(len(sel))
			}
		}
		if blockScanned {
			scannedBlocks++
		}
	}

	// One charge per morsel: the compressed bytes actually streamed, the
	// decode and primitive compute, and the gather's randomly-addressed
	// accumulator traffic whose working set grows with the group width —
	// the cache-residency pressure that bounds useful batch width.
	w.Charge(hw.Work{
		Name:   "vec-scan",
		Tuples: 1,
		ComputePerTuple: float64(zoneChecks)*zoneCheckCycles +
			float64(fastSums)*fastSumCycles +
			float64(decodedTuples)*decodeTupleCycles +
			float64(evalTuples+gatherTuples)*vecexec.VecTupleCycles,
		SeqReadBytes: hdrBytes + payloadBytes,
		RandomReads:  gatherTuples,
		RandomWS:     int64(width) * 64,
	})
	w.AdvanceCycles(vecDispatchCycles)

	stats.pruned.Add(pruned)
	stats.fastSums.Add(fastSums)
	stats.scanned.Add(scannedBlocks)
	return out
}

// vecFor returns the vectorized encoding of table name if it matches the
// relation the batch was formed against (a concurrent re-registration can
// briefly leave the two out of step; the row path is the safe fallback).
func (s *Server) vecFor(name string, rel *scan.Relation) *vecTable {
	if s.ctl == nil {
		return nil
	}
	s.mu.RLock()
	vt := s.vtables[name]
	s.mu.RUnlock()
	if vt == nil || vt.rows != rel.NumRows() || len(vt.cols) != rel.NumCols() {
		return nil
	}
	return vt
}
