package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hwstar/internal/errs"
	"hwstar/internal/hw"
	"hwstar/internal/scan"
	"hwstar/internal/workload"
)

func TestVecOptionsValidation(t *testing.T) {
	if _, err := New(nil, Options{VecAdaptive: true}); err == nil {
		t.Fatal("nil machine accepted")
	}
	s, err := New(hw.Server2S(), Options{VecAdaptive: true})
	if err == nil {
		s.Close()
		t.Fatal("VecAdaptive without Vectorized accepted")
	}
	if !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("error: %v", err)
	}
}

// TestVecScanMatchesRowPath is the tentpole correctness check: the same
// concurrent scan batch, answered through the vectorized compressed path and
// through the row-at-a-time path, must produce identical sums — and both
// must match a serial reference.
func TestVecScanMatchesRowPath(t *testing.T) {
	const clients = 48
	cols, expect := testRelation(30000)
	los := workload.UniformInts(91, clients, 9000)

	run := func(opts Options) []Response {
		t.Helper()
		opts.QueueDepth = clients
		opts.MaxBatch = clients
		opts.BatchWindow = 10 * time.Second
		s := newServer(t, opts)
		defer s.Close()
		if err := s.Register("events", cols); err != nil {
			t.Fatal(err)
		}
		resps := make([]Response, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				var err error
				resps[i], err = s.Submit(context.Background(), Request{
					Op:    OpScan,
					Table: "events",
					Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 800, AggCol: 1},
				})
				if err != nil {
					t.Errorf("client %d: %v", i, err)
				}
			}()
		}
		wg.Wait()
		if h := s.Health(); opts.Vectorized {
			if !h.Vectorized || h.VecPasses == 0 {
				t.Fatalf("vectorized health: %+v", h)
			}
			if h.VecBlocksPruned+h.VecFastSums+h.VecBlocksScanned == 0 {
				t.Fatal("no block outcomes recorded")
			}
			if h.Ctl.Observations == 0 {
				t.Fatal("controller saw no passes")
			}
		} else if h.Vectorized || h.VecPasses != 0 {
			t.Fatalf("row-path health claims vectorized: %+v", h)
		}
		return resps
	}

	rowResps := run(Options{})
	vecResps := run(Options{Vectorized: true})
	for i := 0; i < clients; i++ {
		want := expect(los[i], los[i]+800)
		if rowResps[i].Sum != want {
			t.Fatalf("row client %d: sum %d, want %d", i, rowResps[i].Sum, want)
		}
		if vecResps[i].Sum != want {
			t.Fatalf("vec client %d: sum %d, want %d", i, vecResps[i].Sum, want)
		}
	}
}

// TestVecScanZeroMatchQueries covers the satellite-1 bug class end to end: a
// batch where some queries select no rows must return zero sums, not values
// leaked from an "all rows" misreading of an empty selection.
func TestVecScanZeroMatchQueries(t *testing.T) {
	cols, _ := testRelation(10000)
	s := newServer(t, Options{Vectorized: true, QueueDepth: 8, MaxBatch: 4, BatchWindow: 10 * time.Second})
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	resps := make([]Response, 4)
	for i := 0; i < 4; i++ {
		i := i
		lo, hi := int64(50000), int64(60000) // above the value domain: no rows
		if i%2 == 0 {
			lo, hi = 0, 20000 // all rows
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			resps[i], err = s.Submit(context.Background(), Request{
				Op:    OpScan,
				Table: "events",
				Query: scan.Query{FilterCol: 0, Lo: lo, Hi: hi, AggCol: 1},
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	var all int64
	for _, v := range cols[1] {
		all += v
	}
	for i, r := range resps {
		want := all
		if i%2 != 0 {
			want = 0
		}
		if r.Sum != want {
			t.Fatalf("client %d: sum %d, want %d", i, r.Sum, want)
		}
	}
}

// TestVecRegisterReplace re-registers a table with different data while the
// server is live: the vectorized encoding must follow the relation, never
// serving sums from the stale encoding.
func TestVecRegisterReplace(t *testing.T) {
	s := newServer(t, Options{Vectorized: true, QueueDepth: 4, MaxBatch: 1})
	defer s.Close()
	first := [][]int64{{1, 2, 3, 4}, {10, 20, 30, 40}}
	if err := s.Register("t", first); err != nil {
		t.Fatal(err)
	}
	second := [][]int64{{1, 2, 3, 4, 5}, {100, 200, 300, 400, 500}}
	if err := s.Register("t", second); err != nil {
		t.Fatal(err)
	}
	r, err := s.Submit(context.Background(), Request{
		Op:    OpScan,
		Table: "t",
		Query: scan.Query{FilterCol: 0, Lo: 2, Hi: 4, AggCol: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sum != 900 {
		t.Fatalf("sum %d, want 900 (stale vectorized encoding?)", r.Sum)
	}
}
