package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/scan"
	"hwstar/internal/store"
)

func openStore(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	opts.Dir = dir
	if opts.Machine == nil {
		opts.Machine = hw.Server2S()
	}
	st, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDurableRestartServesCommittedData is the serve-level durability loop:
// register, checkpoint, close, reopen the same directory, and the restarted
// server answers the same scans from its recovered tables.
func TestDurableRestartServesCommittedData(t *testing.T) {
	dir := t.TempDir()
	cols, expect := testRelation(4000)
	want := expect(100, 5000)

	st := openStore(t, dir, store.Options{})
	s := newServer(t, Options{Store: st})
	if err := s.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cp.Segments != 1 {
		t.Fatalf("checkpoint wrote %d segments, want 1", cp.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, store.Options{})
	defer st2.Close()
	s2 := newServer(t, Options{Store: st2})
	defer s2.Close()
	if err := s2.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := s2.Submit(context.Background(), Request{Op: OpScan, Table: "events", Query: scan.Query{FilterCol: 0, Lo: 100, Hi: 5000, AggCol: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sum != want {
		t.Fatalf("recovered scan sum = %d, want %d", resp.Sum, want)
	}
	h := s2.Health()
	if !h.Durable || h.Recovering {
		t.Fatalf("health durable=%v recovering=%v, want durable and not recovering", h.Durable, h.Recovering)
	}
	if h.Recovery.TablesTotal != 1 {
		t.Fatalf("recovery saw %d tables, want 1", h.Recovery.TablesTotal)
	}
	if h.ReplayedTables != 1 {
		t.Fatalf("replayed %d tables, want 1", h.ReplayedTables)
	}
}

// TestCloseFlushesStagedTables checks the shutdown flush: a durable server
// closed without any explicit Checkpoint still restarts with its registered
// tables intact.
func TestCloseFlushesStagedTables(t *testing.T) {
	dir := t.TempDir()
	cols, expect := testRelation(2000)
	want := expect(0, 10000)

	st := openStore(t, dir, store.Options{})
	s := newServer(t, Options{Store: st})
	if err := s.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("flushed", cols); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, store.Options{})
	defer st2.Close()
	s2 := newServer(t, Options{Store: st2})
	defer s2.Close()
	if err := s2.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := s2.Submit(context.Background(), Request{Op: OpScan, Table: "flushed", Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 10000, AggCol: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sum != want {
		t.Fatalf("flushed scan sum = %d, want %d", resp.Sum, want)
	}
}

// TestRecoveringGate pins the admission gate: while the replay flag is up,
// Submit and Register shed with ErrRecovering and Health reports the
// recovering state; once it drops, both succeed.
func TestRecoveringGate(t *testing.T) {
	st := openStore(t, t.TempDir(), store.Options{})
	defer st.Close()
	s := newServer(t, Options{Store: st})
	defer s.Close()
	if err := s.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Raise the gate by hand: the real replay window on an empty store is
	// too short to race against deterministically.
	s.recovering.Store(true)
	if _, err := s.Submit(context.Background(), Request{Op: OpScan, Table: "x"}); !errors.Is(err, errs.ErrRecovering) {
		t.Fatalf("submit during recovery: %v, want ErrRecovering", err)
	}
	if err := s.Register("x", [][]int64{{1}}); !errors.Is(err, errs.ErrRecovering) {
		t.Fatalf("register during recovery: %v, want ErrRecovering", err)
	}
	h := s.Health()
	if h.State != "recovering" || !h.Recovering || h.RecoveringShed != 1 {
		t.Fatalf("health = %q recovering=%v shed=%d, want recovering state and 1 shed", h.State, h.Recovering, h.RecoveringShed)
	}
	s.recovering.Store(false)
	if err := s.Register("x", [][]int64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{Op: OpScan, Table: "x", Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 10, AggCol: 1}}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRegisterRacesRecovery hammers Register from many goroutines
// while the recovery gate flips: every call must either land fully (table
// scannable with the right sum) or shed cleanly with ErrRecovering — never
// a partial registration, a wrong error class, or a data race (this test is
// in the race-core set).
func TestConcurrentRegisterRacesRecovery(t *testing.T) {
	st := openStore(t, t.TempDir(), store.Options{})
	defer st.Close()
	s := newServer(t, Options{Store: st})
	defer s.Close()
	if err := s.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}

	const registrars = 8
	const flips = 50
	var accepted [registrars][]string
	var shed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < registrars; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < flips; i++ {
				name := fmt.Sprintf("t%d-%d", g, i)
				err := s.Register(name, [][]int64{{int64(i), int64(i + 1)}, {10, 20}})
				switch {
				case err == nil:
					accepted[g] = append(accepted[g], name)
				case errors.Is(err, errs.ErrRecovering):
					shed.Add(1)
				default:
					t.Errorf("register %s: unexpected error %v", name, err)
					return
				}
			}
		}(g)
	}
	// Flip the recovery gate underneath the registrars, mimicking a replay
	// that finishes (and a test-staged re-entry) while registrations arrive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < flips; i++ {
			s.recovering.Store(i%2 == 1)
			runtime.Gosched()
		}
		s.recovering.Store(false)
	}()
	close(start)
	wg.Wait()

	if shed.Load() == 0 {
		t.Log("no register call observed the recovering gate (timing-dependent); accepted registrations still verified")
	}
	// Every accepted registration is fully visible and scannable.
	for g := range accepted {
		for _, name := range accepted[g] {
			resp, err := s.Submit(context.Background(), Request{Op: OpScan, Table: name, Query: scan.Query{FilterCol: 0, Lo: -1 << 40, Hi: 1 << 40, AggCol: 1}})
			if err != nil {
				t.Fatalf("accepted table %s not servable: %v", name, err)
			}
			if resp.Sum != 30 {
				t.Fatalf("accepted table %s sum = %d, want 30", name, resp.Sum)
			}
		}
	}
}

// TestColdTableFaultsInOnDemand boots against a store whose hot budget fits
// only one table: the cold one is not registered at replay, and the first
// scan against it faults it in from the flash tier (priced, counted), after
// which it serves from memory.
func TestColdTableFaultsInOnDemand(t *testing.T) {
	dir := t.TempDir()
	cols, expect := testRelation(4000)
	small := [][]int64{{1, 2, 3}, {10, 20, 30}}

	st := openStore(t, dir, store.Options{})
	s := newServer(t, Options{Store: st})
	if err := s.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("big", cols); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("small", small); err != nil {
		t.Fatal(err)
	}
	// Touch big more so the classifier ranks it hotter than small.
	for i := 0; i < 32; i++ {
		if _, err := s.Submit(context.Background(), Request{Op: OpScan, Table: "big", Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 1, AggCol: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A hot budget that fits big (4000 rows × 2 cols × 8B = 64000 bytes) but
	// not big+small leaves the colder one out.
	st2 := openStore(t, dir, store.Options{HotBytes: 64024})
	defer st2.Close()
	s2 := newServer(t, Options{Store: st2})
	defer s2.Close()
	if err := s2.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s2.Health().ReplayedTables; got != 1 {
		t.Fatalf("replayed %d tables, want only the hot one", got)
	}
	if tier := st2.Tier("small"); tier != store.TierCold {
		t.Fatalf("small tier = %q, want cold", tier)
	}
	resp, err := s2.Submit(context.Background(), Request{Op: OpScan, Table: "small", Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 100, AggCol: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 60 {
		t.Fatalf("cold scan sum = %d, want 60", resp.Sum)
	}
	h := s2.Health()
	if h.ColdLoads != 1 {
		t.Fatalf("cold loads = %d, want 1", h.ColdLoads)
	}
	// The hot table recovered too.
	want := expect(0, 10000)
	resp, err = s2.Submit(context.Background(), Request{Op: OpScan, Table: "big", Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 10000, AggCol: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sum != want {
		t.Fatalf("hot scan sum = %d, want %d", resp.Sum, want)
	}
}

// TestCheckpointIntervalPersistsInBackground arms the interval checkpointer
// and watches the store's committed version advance without any explicit
// Checkpoint call.
func TestCheckpointIntervalPersistsInBackground(t *testing.T) {
	st := openStore(t, t.TempDir(), store.Options{})
	defer st.Close()
	s := newServer(t, Options{Store: st, CheckpointInterval: 2 * time.Millisecond})
	defer s.Close()
	if err := s.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("bg", [][]int64{{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Version() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never committed a version")
		}
		time.Sleep(time.Millisecond)
	}
	if s.Health().Checkpoints == 0 {
		t.Fatal("health reports zero checkpoints after background commit")
	}
}

// TestCheckpointRequiresStore pins the Options validation and the explicit
// Checkpoint call's behaviour on a memory-only server.
func TestCheckpointRequiresStore(t *testing.T) {
	if _, err := New(hw.Laptop(), Options{CheckpointInterval: time.Second}); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("interval without store: %v, want ErrInvalidInput", err)
	}
	s := newServer(t, Options{})
	defer s.Close()
	if _, err := s.Checkpoint(context.Background()); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("checkpoint without store: %v, want ErrInvalidInput", err)
	}
}

// TestCheckpointMemShedUnderTightBudget arms a governor whose budget cannot
// grant the checkpoint's encode buffers: the checkpoint sheds with
// ErrMemoryPressure instead of blowing the budget, and the counter records
// it.
func TestCheckpointMemShedUnderTightBudget(t *testing.T) {
	st := openStore(t, t.TempDir(), store.Options{})
	defer st.Close()
	s := newServer(t, Options{Store: st, Memory: mem.Config{BudgetBytes: 8 << 10}})
	defer s.Close()
	if err := s.WaitRecovered(context.Background()); err != nil {
		t.Fatal(err)
	}
	cols, _ := testRelation(8000)
	if err := s.Register("wide", cols); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(context.Background()); !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("tight-budget checkpoint: %v, want ErrMemoryPressure", err)
	}
	if s.Health().CheckpointMemShed == 0 {
		t.Fatal("checkpoint mem-shed not counted")
	}
}

// TestNoGoroutineLeaksAcrossKillRecoverCycles runs several server lifetimes
// against one directory with crash and torn-write injection armed on the
// store, closing and recovering each time, and checks the goroutine count
// settles back: neither the replay goroutine, the checkpointer, nor any
// recovery path may leak.
func TestNoGoroutineLeaksAcrossKillRecoverCycles(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	cols, expect := testRelation(1000)
	want := expect(0, 10000)

	for cycle := 0; cycle < 5; cycle++ {
		in := fault.New(fault.Config{
			Seed:             int64(1000 + cycle),
			CrashProb:        0.3,
			TornWriteProb:    0.3,
			ChecksumFlipProb: 0.2,
			MaxFaults:        2,
		})
		// Silent-corruption classes (torn writes and checksum flips report
		// success) can poison the only copy of a segment that every retained
		// manifest references; the contract then is a LOUD ErrCorrupted from
		// Open, never wrong data. Model the operator's only remedy — restore
		// from scratch — and keep cycling.
		st, err := store.Open(store.Options{Dir: dir, Machine: hw.Server2S(), Faults: in})
		if errors.Is(err, errs.ErrCorrupted) {
			if err := os.RemoveAll(dir); err != nil {
				t.Fatal(err)
			}
			st, err = store.Open(store.Options{Dir: dir, Machine: hw.Server2S(), Faults: in})
		}
		if err != nil {
			t.Fatal(err)
		}
		s := newServer(t, Options{Store: st, CheckpointInterval: time.Millisecond})
		if err := s.WaitRecovered(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := s.Register("t", cols); err != nil {
			t.Fatal(err)
		}
		// Checkpoints may crash or tear under injection — the loop only cares
		// that every outcome drains cleanly.
		_, _ = s.Checkpoint(context.Background())
		if resp, err := s.Submit(context.Background(), Request{Op: OpScan, Table: "t", Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 10000, AggCol: 1}}); err != nil {
			t.Fatal(err)
		} else if resp.Sum != want {
			t.Fatalf("cycle %d: sum = %d, want %d", cycle, resp.Sum, want)
		}
		_ = s.Close() // flush may fail under injection; goroutines must still exit
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
