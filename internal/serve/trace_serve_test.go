package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"hwstar/internal/fault"
	"hwstar/internal/scan"
	"hwstar/internal/trace"
	"hwstar/internal/workload"
)

// TestRequestTracing drives a traced batch of scans plus a join and checks
// the span trees decompose each request's lifecycle: the root carries the
// op and terminal status, queue/batch-assembly/execute stages are present,
// and — the consistency contract — the stages' wall times sum to no more
// than the root's wall, which itself agrees with the latency the server
// reported for the request.
func TestRequestTracing(t *testing.T) {
	const clients = 8
	cols, _ := testRelation(20000)
	tr := trace.New(trace.Config{Capacity: 64, SampleEvery: 1})
	s := newServer(t, Options{QueueDepth: clients, MaxBatch: clients, BatchWindow: 10 * time.Second, Trace: tr})
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}

	los := workload.UniformInts(91, clients, 9000)
	var wg sync.WaitGroup
	resps := make([]Response, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var err error
			resps[i], err = s.Submit(context.Background(), Request{
				Op:    OpScan,
				Table: "events",
				Query: scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 800, AggCol: 1},
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	traces := tr.Snapshot()
	if len(traces) != clients {
		t.Fatalf("got %d traces, want %d", len(traces), clients)
	}
	var batchCycles float64
	for _, td := range traces {
		root := td.Root()
		if root.Name != "request:scan" {
			t.Fatalf("root span %q, want request:scan", root.Name)
		}
		status := ""
		for _, a := range root.Attrs {
			if a.Key == "status" {
				status = a.Value
			}
		}
		if status != "ok" {
			t.Fatalf("root status %q, want ok: %s", status, td.Render())
		}
		if root.Wall <= 0 {
			t.Fatalf("root span never ended: %s", td.Render())
		}
		// Lifecycle stages are disjoint sub-intervals of the request, so
		// their walls must sum to at most the root's wall.
		stages := td.SumWall("queue") + td.SumWall("batch-assembly") +
			td.SumWall("execute") + td.SumWall("retry-backoff")
		if stages > root.Wall {
			t.Fatalf("stage walls %v exceed root wall %v:\n%s", stages, root.Wall, td.Render())
		}
		if td.SumWall("queue") <= 0 {
			t.Fatalf("no queue span recorded:\n%s", td.Render())
		}
		if c := td.SumCycles("execute"); c <= 0 {
			t.Fatalf("execute span carries no simulated cycles:\n%s", td.Render())
		}
		batchCycles += td.SumCycles("execute")
	}
	// Execute cycles across the batch account the shared pass: the leader
	// carries the full makespan, the rest their amortized share, so the
	// total must be at least the per-request cost times the batch size.
	var respCycles float64
	for _, r := range resps {
		respCycles += r.SimCycles
	}
	if batchCycles < respCycles {
		t.Fatalf("trace execute cycles %.0f < reported cycles %.0f", batchCycles, respCycles)
	}

	// The queue-wait histogram and the queue spans measure the same
	// interval; both must exist for every admitted request, and the span
	// sum must be consistent with the recorded total (same events, sampled
	// nanoseconds apart).
	qw := s.Metrics().Histogram("serve.queue_wait_ms")
	if qw.Count() != clients {
		t.Fatalf("queue_wait_ms count %d, want %d", qw.Count(), clients)
	}
	var spanQueueMs float64
	for _, td := range traces {
		spanQueueMs += float64(td.SumWall("queue").Microseconds()) / 1000
	}
	histQueueMs := qw.Stats().Sum
	if diff := spanQueueMs - histQueueMs; diff < -50 || diff > 50 {
		t.Fatalf("queue spans sum %.3fms inconsistent with queue_wait_ms sum %.3fms", spanQueueMs, histQueueMs)
	}
	// Root walls agree with reported latency: the latency histogram and the
	// root spans bracket the same requests.
	lat := s.Metrics().Histogram("serve.latency_ms")
	var rootMs float64
	for _, td := range traces {
		rootMs += float64(td.Root().Wall.Microseconds()) / 1000
	}
	if diff := rootMs - lat.Stats().Sum; diff < -50 || diff > 50 {
		t.Fatalf("root span walls %.3fms inconsistent with latency_ms sum %.3fms", rootMs, lat.Stats().Sum)
	}
}

// TestTracingRecordsRetries arms a transient-fault injector and checks that
// a retried request's trace carries retry-backoff spans and annotations.
func TestTracingRecordsRetries(t *testing.T) {
	cols, _ := testRelation(20000)
	tr := trace.New(trace.Config{Capacity: 16, SampleEvery: 1})
	inj := fault.New(fault.Config{Seed: 5, TransientProb: 0.3})
	s := newServer(t, Options{
		QueueDepth: 4, MaxBatch: 1, BatchWindow: time.Millisecond,
		Faults: inj, MaxRetries: 8, RetryBackoff: 50 * time.Microsecond,
		JitterSeed: 11, Trace: tr,
	})
	defer s.Close()
	if err := s.Register("events", cols); err != nil {
		t.Fatal(err)
	}
	// Submit until at least one retry has happened, bounded by patience.
	for i := 0; i < 50; i++ {
		_, _ = s.Submit(context.Background(), Request{
			Op: OpScan, Table: "events",
			Query: scan.Query{FilterCol: 0, Lo: 0, Hi: 5000, AggCol: 1},
		})
		if s.Metrics().Counters()["serve.retries"] > 0 {
			break
		}
	}
	if s.Metrics().Counters()["serve.retries"] == 0 {
		t.Skip("injector produced no retry in 50 requests")
	}
	var sawBackoff bool
	for _, td := range tr.Snapshot() {
		if td.SumWall("retry-backoff") > 0 {
			sawBackoff = true
			if len(td.Root().Events) == 0 {
				t.Fatalf("retried trace has no retry annotation:\n%s", td.Render())
			}
		}
	}
	if !sawBackoff {
		t.Fatal("retries recorded in metrics but no retry-backoff span in any trace")
	}
}

// TestJitterSeedDeterminism pins the backoff-jitter contract: an explicit
// JitterSeed reproduces the exact backoff sequence across servers, and the
// default derives per-server seeds so two servers do NOT draw identical
// jitter (the bug this guards against: a constant seed synchronized the
// retry storms of every server instance).
func TestJitterSeedDeterminism(t *testing.T) {
	seq := func(opts Options) []time.Duration {
		s := newServer(t, opts)
		defer s.Close()
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = s.backoff(i % 4)
		}
		return out
	}
	fixed := Options{MaxRetries: 2, RetryBackoff: 100 * time.Microsecond, JitterSeed: 42}
	a, b := seq(fixed), seq(fixed)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fixed seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	varied := Options{MaxRetries: 2, RetryBackoff: 100 * time.Microsecond}
	c, d := seq(varied), seq(varied)
	same := true
	for i := range c {
		if c[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("default seed produced identical jitter sequences: %v", c)
	}
}
