// Package vmsim models the virtualization pressures the keynote identifies:
// a consolidated machine where a database shares hardware with noisy
// neighbours it cannot see. The simulator injects three canonical
// disturbances — CPU steal time, cache pollution, and memory-bandwidth
// contention — into query executions and reports the resulting latency
// distribution, making "performance predictability" a measurable quantity
// (tail-to-median ratios) rather than an anecdote. A reserved-resources mode
// models the isolation countermeasure.
package vmsim

import (
	"fmt"
	"math/rand"

	"hwstar/internal/hw"
	"hwstar/internal/metrics"
)

// Interference parameterizes the neighbours' behaviour. All fields are
// probabilities or multipliers per query execution.
type Interference struct {
	// StealProb is the chance a query's timeslice is stolen by another
	// tenant's vCPU; a stolen slice adds StealPenalty × base latency.
	StealProb    float64
	StealPenalty float64
	// PollutionProb is the chance the tenant's cache-resident state was
	// evicted by a neighbour before the query ran; a polluted run raises
	// the memory interference factor to PollutionFactor.
	PollutionProb   float64
	PollutionFactor float64
	// BandwidthFactor is the steady-state memory-bandwidth inflation from
	// co-running tenants (1 = idle machine).
	BandwidthFactor float64
}

// Validate reports an error for out-of-range parameters.
func (i Interference) Validate() error {
	if i.StealProb < 0 || i.StealProb > 1 || i.PollutionProb < 0 || i.PollutionProb > 1 {
		return fmt.Errorf("vmsim: probabilities must be in [0,1]: %+v", i)
	}
	if i.StealPenalty < 0 || (i.PollutionProb > 0 && i.PollutionFactor < 1) || i.BandwidthFactor < 1 {
		return fmt.Errorf("vmsim: penalties must be non-negative and factors >= 1: %+v", i)
	}
	return nil
}

// None returns an undisturbed machine.
func None() Interference { return Interference{PollutionFactor: 1, BandwidthFactor: 1} }

// Light models a moderately consolidated host.
func Light() Interference {
	return Interference{
		StealProb: 0.02, StealPenalty: 1.0,
		PollutionProb: 0.10, PollutionFactor: 1.5,
		BandwidthFactor: 1.2,
	}
}

// Heavy models an oversubscribed host.
func Heavy() Interference {
	return Interference{
		StealProb: 0.15, StealPenalty: 3.0,
		PollutionProb: 0.40, PollutionFactor: 2.5,
		BandwidthFactor: 1.8,
	}
}

// Isolated applies the countermeasure to an interference level: pinned cores
// eliminate steal, cache partitioning (way partitioning / page colouring)
// eliminates pollution; only the shared memory bus remains.
func Isolated(i Interference) Interference {
	return Interference{PollutionFactor: 1, BandwidthFactor: i.BandwidthFactor}
}

// QuerySpec is the work of one query execution, priced per run under the
// disturbance drawn for that run.
type QuerySpec struct {
	Work hw.Work
}

// RunDistribution executes n queries of the given spec on machine m under
// interference inter and returns the latency histogram (in cycles). The
// random draws are seeded and deterministic.
func RunDistribution(m *hw.Machine, spec QuerySpec, inter Interference, n int, seed int64) (*metrics.Histogram, error) {
	if err := inter.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("vmsim: need a positive query count, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	hist := metrics.NewHistogram(n)
	for q := 0; q < n; q++ {
		factor := inter.BandwidthFactor
		if inter.PollutionProb > 0 && rng.Float64() < inter.PollutionProb {
			// Pollution severity varies with how much the neighbour touched:
			// draw the factor uniformly up to the configured maximum.
			f := 1 + rng.Float64()*(inter.PollutionFactor-1)
			if f > factor {
				factor = f
			}
		}
		ctx := hw.ExecContext{ActiveCoresOnSocket: 1, InterferenceFactor: factor}
		lat := m.Cycles(spec.Work, ctx)
		if inter.StealProb > 0 && rng.Float64() < inter.StealProb {
			// Steal time is bursty: exponentially distributed around the
			// configured penalty.
			lat *= 1 + rng.ExpFloat64()*inter.StealPenalty
		}
		hist.Record(lat)
	}
	return hist, nil
}

// Predictability summarizes a latency distribution the way SLO discussions
// do: tail-to-median ratios.
type Predictability struct {
	P50, P95, P99, P999 float64
}

// Summarize extracts the predictability profile from a latency histogram.
func Summarize(h *metrics.Histogram) Predictability {
	return Predictability{
		P50:  h.Quantile(0.50),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
	}
}

// TailRatio returns p99/p50 — the headline predictability number.
func (p Predictability) TailRatio() float64 {
	if p.P50 == 0 {
		return 0
	}
	return p.P99 / p.P50
}
