package vmsim

import (
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
)

func spec() QuerySpec {
	return QuerySpec{Work: hw.Work{
		Tuples: 100000, ComputePerTuple: 4,
		SeqReadBytes: 8 << 20,
		RandomReads:  20000, RandomWS: 1 << 30,
	}}
}

func TestInterferenceValidate(t *testing.T) {
	for _, ok := range []Interference{None(), Light(), Heavy(), Isolated(Heavy())} {
		if err := ok.Validate(); err != nil {
			t.Fatalf("%+v should validate: %v", ok, err)
		}
	}
	bad := []Interference{
		{StealProb: -0.1, PollutionFactor: 1, BandwidthFactor: 1},
		{StealProb: 1.5, PollutionFactor: 1, BandwidthFactor: 1},
		{PollutionProb: 0.5, PollutionFactor: 0.5, BandwidthFactor: 1},
		{PollutionFactor: 1, BandwidthFactor: 0.5},
		{StealPenalty: -1, PollutionFactor: 1, BandwidthFactor: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad interference %d should fail: %+v", i, b)
		}
	}
}

func TestRunDistributionBasics(t *testing.T) {
	m := hw.Server2S()
	h, err := RunDistribution(m, spec(), None(), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != 500 {
		t.Fatalf("count = %d", h.Count())
	}
	// Undisturbed: every run identical.
	if h.Min() != h.Max() {
		t.Fatalf("undisturbed runs should be constant: %f..%f", h.Min(), h.Max())
	}
	if _, err := RunDistribution(m, spec(), None(), 0, 1); err == nil {
		t.Fatal("zero queries should fail")
	}
	if _, err := RunDistribution(m, spec(), Interference{BandwidthFactor: 0.1, PollutionFactor: 1}, 5, 1); err == nil {
		t.Fatal("invalid interference should fail")
	}
}

func TestInterferenceRaisesTail(t *testing.T) {
	m := hw.Server2S()
	base, _ := RunDistribution(m, spec(), None(), 2000, 7)
	heavy, _ := RunDistribution(m, spec(), Heavy(), 2000, 7)
	pb, ph := Summarize(base), Summarize(heavy)
	if ph.P50 <= pb.P50 {
		t.Fatalf("heavy interference should raise median: %f <= %f", ph.P50, pb.P50)
	}
	if ph.TailRatio() <= 1.05 {
		t.Fatalf("heavy interference tail ratio = %f, should be well above 1", ph.TailRatio())
	}
	if pb.TailRatio() > 1.0001 {
		t.Fatalf("undisturbed tail ratio = %f, should be 1", pb.TailRatio())
	}
}

func TestIsolationRestoresPredictability(t *testing.T) {
	m := hw.Server2S()
	heavy, _ := RunDistribution(m, spec(), Heavy(), 2000, 9)
	isolated, _ := RunDistribution(m, spec(), Isolated(Heavy()), 2000, 9)
	ph, pi := Summarize(heavy), Summarize(isolated)
	if pi.TailRatio() >= ph.TailRatio() {
		t.Fatalf("isolation should shrink the tail: %f >= %f", pi.TailRatio(), ph.TailRatio())
	}
	// Isolation keeps the bandwidth tax but removes the variance.
	if pi.P999 > pi.P50*1.0001 {
		t.Fatalf("isolated runs should be near-constant: p999 %f vs p50 %f", pi.P999, pi.P50)
	}
}

func TestLightBetweenNoneAndHeavy(t *testing.T) {
	m := hw.Server2S()
	none, _ := RunDistribution(m, spec(), None(), 1500, 3)
	light, _ := RunDistribution(m, spec(), Light(), 1500, 3)
	heavy, _ := RunDistribution(m, spec(), Heavy(), 1500, 3)
	n, l, h := Summarize(none), Summarize(light), Summarize(heavy)
	if !(n.P99 <= l.P99 && l.P99 <= h.P99) {
		t.Fatalf("p99 ordering violated: %f, %f, %f", n.P99, l.P99, h.P99)
	}
}

func TestDeterminism(t *testing.T) {
	m := hw.Laptop()
	a, _ := RunDistribution(m, spec(), Heavy(), 300, 42)
	b, _ := RunDistribution(m, spec(), Heavy(), 300, 42)
	if a.Quantile(0.9) != b.Quantile(0.9) || a.Sum() != b.Sum() {
		t.Fatal("same seed must reproduce the distribution")
	}
	c, _ := RunDistribution(m, spec(), Heavy(), 300, 43)
	if a.Sum() == c.Sum() {
		t.Fatal("different seeds should differ")
	}
}

func TestTailRatioZeroSafe(t *testing.T) {
	if (Predictability{}).TailRatio() != 0 {
		t.Fatal("zero median should not divide by zero")
	}
}

// Property: interference can only slow queries down — every latency under
// disturbance is at least the undisturbed latency.
func TestInterferenceMonotoneProperty(t *testing.T) {
	m := hw.Server2S()
	baseLat := m.Cycles(spec().Work, hw.DefaultContext())
	f := func(seed int64, stealRaw, pollRaw uint8) bool {
		inter := Interference{
			StealProb:       float64(stealRaw%100) / 100,
			StealPenalty:    2,
			PollutionProb:   float64(pollRaw%100) / 100,
			PollutionFactor: 2,
			BandwidthFactor: 1.1,
		}
		h, err := RunDistribution(m, spec(), inter, 100, seed)
		if err != nil {
			return false
		}
		return h.Min() >= baseLat-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
