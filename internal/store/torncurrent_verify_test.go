package store

import (
	"context"
	"testing"

	"hwstar/internal/fault"
)

func TestVerifyTornCurrentReview(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	s.Put(testTable("a", 120, 3))
	mustCheckpoint(t, s) // version 1 committed cleanly

	in := fault.New(fault.Config{Seed: 7, TornWriteSites: map[string]float64{"current": 1}, MaxFaults: 1})
	s.opts.Faults = in
	s.Put(testTable("a", 10, 9))
	if _, err := s.Checkpoint(context.Background(), nil); err != nil {
		t.Fatalf("torn checkpoint reported failure: %v", err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Logf("recovered version=%d tables=%v", r.Version(), r.Tables())
	if len(r.Tables()) == 0 {
		t.Fatalf("SILENT DATA LOSS: recovered empty store after torn CURRENT")
	}
}
