package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/table"
)

// Segment file format. A segment is one table checkpointed columnar:
//
//	magic (8 bytes) | header length (u32 LE) | header JSON | column payloads | crc32c (u32 LE)
//
// The CRC covers every byte before it (magic, length, header, payloads), so
// a torn write, a truncated file, or a flipped byte anywhere is caught by
// one validation pass at read time. Column payloads are little-endian:
// int64/float64 columns as 8×rows bytes, string columns as the dictionary
// (u32 count, then u32 length + bytes per entry) followed by 4×rows codes.
var segMagic = [8]byte{'H', 'W', 'S', 'E', 'G', '1', 0, 1}

// crcTable is the Castagnoli polynomial — hardware-accelerated on every
// server CPU since SSE4.2, the checksum real storage engines use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segHeader is the JSON header of a segment file.
type segHeader struct {
	Table string   `json:"table"`
	Rows  int      `json:"rows"`
	Cols  []segCol `json:"cols"`
}

type segCol struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// encodeSegment serializes t into the segment format, checksum included.
func encodeSegment(t *table.Table) ([]byte, error) {
	hdr := segHeader{Table: t.Name(), Rows: t.NumRows()}
	for i := 0; i < t.Schema().NumColumns(); i++ {
		def := t.Schema().Column(i)
		hdr.Cols = append(hdr.Cols, segCol{Name: def.Name, Type: def.Type.String()})
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("store: encode header for %q: %w", t.Name(), err)
	}
	var buf bytes.Buffer
	buf.Write(segMagic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(hdrJSON)))
	buf.Write(u32[:])
	buf.Write(hdrJSON)
	for i := 0; i < t.Schema().NumColumns(); i++ {
		if err := encodeColumn(&buf, t.Column(i)); err != nil {
			return nil, fmt.Errorf("store: table %q column %q: %w", t.Name(), t.Schema().Column(i).Name, err)
		}
	}
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(buf.Bytes(), crcTable))
	buf.Write(u32[:])
	return buf.Bytes(), nil
}

func encodeColumn(buf *bytes.Buffer, c table.ColumnData) error {
	var u32 [4]byte
	var u64 [8]byte
	switch d := c.(type) {
	case *table.Int64Data:
		for _, v := range d.Values {
			binary.LittleEndian.PutUint64(u64[:], uint64(v))
			buf.Write(u64[:])
		}
	case *table.Float64Data:
		for _, v := range d.Values {
			binary.LittleEndian.PutUint64(u64[:], math.Float64bits(v))
			buf.Write(u64[:])
		}
	case *table.StringData:
		binary.LittleEndian.PutUint32(u32[:], uint32(len(d.Dict)))
		buf.Write(u32[:])
		for _, s := range d.Dict {
			binary.LittleEndian.PutUint32(u32[:], uint32(len(s)))
			buf.Write(u32[:])
			buf.WriteString(s)
		}
		for _, code := range d.Codes {
			binary.LittleEndian.PutUint32(u32[:], uint32(code))
			buf.Write(u32[:])
		}
	default:
		return fmt.Errorf("unsupported column storage %T: %w", c, errs.ErrInvalidInput)
	}
	return nil
}

// decodeSegment validates the checksum and envelope of raw and rebuilds the
// table. Any mismatch — bad magic, truncation, CRC failure, inconsistent
// header — wraps errs.ErrCorrupted.
func decodeSegment(raw []byte) (*table.Table, error) {
	const envelope = 8 + 4 + 4 // magic + header length + trailing crc
	if len(raw) < envelope {
		return nil, fmt.Errorf("store: segment truncated at %d bytes: %w", len(raw), errs.ErrCorrupted)
	}
	if !bytes.Equal(raw[:8], segMagic[:]) {
		return nil, fmt.Errorf("store: bad segment magic: %w", errs.ErrCorrupted)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("store: segment checksum mismatch (got %08x want %08x): %w", got, want, errs.ErrCorrupted)
	}
	hdrLen := int(binary.LittleEndian.Uint32(raw[8:12]))
	if hdrLen < 0 || 12+hdrLen > len(body) {
		return nil, fmt.Errorf("store: segment header length %d out of range: %w", hdrLen, errs.ErrCorrupted)
	}
	var hdr segHeader
	if err := json.Unmarshal(raw[12:12+hdrLen], &hdr); err != nil {
		return nil, fmt.Errorf("store: segment header: %w: %w", err, errs.ErrCorrupted)
	}
	defs := make([]table.ColumnDef, len(hdr.Cols))
	for i, c := range hdr.Cols {
		t, err := typeFromName(c.Type)
		if err != nil {
			return nil, err
		}
		defs[i] = table.ColumnDef{Name: c.Name, Type: t}
	}
	schema, err := table.NewSchema(defs...)
	if err != nil {
		return nil, fmt.Errorf("store: segment schema: %w: %w", err, errs.ErrCorrupted)
	}
	payload := body[12+hdrLen:]
	cols := make([]table.ColumnData, len(defs))
	for i, def := range defs {
		var c table.ColumnData
		c, payload, err = decodeColumn(payload, def.Type, hdr.Rows)
		if err != nil {
			return nil, fmt.Errorf("store: table %q column %q: %w", hdr.Table, def.Name, err)
		}
		cols[i] = c
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("store: %d trailing payload bytes: %w", len(payload), errs.ErrCorrupted)
	}
	t, err := table.FromColumns(hdr.Table, schema, cols)
	if err != nil {
		return nil, fmt.Errorf("store: rebuild table: %w: %w", err, errs.ErrCorrupted)
	}
	return t, nil
}

func decodeColumn(payload []byte, typ table.Type, rows int) (table.ColumnData, []byte, error) {
	need := func(n int) error {
		if n < 0 || n > len(payload) {
			return fmt.Errorf("payload truncated (need %d of %d bytes): %w", n, len(payload), errs.ErrCorrupted)
		}
		return nil
	}
	switch typ {
	case table.Int64:
		if err := need(rows * 8); err != nil {
			return nil, nil, err
		}
		vals := make([]int64, rows)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
		return &table.Int64Data{Values: vals}, payload[rows*8:], nil
	case table.Float64:
		if err := need(rows * 8); err != nil {
			return nil, nil, err
		}
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
		return &table.Float64Data{Values: vals}, payload[rows*8:], nil
	case table.String:
		if err := need(4); err != nil {
			return nil, nil, err
		}
		dictN := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		dict := make([]string, 0, dictN)
		for i := 0; i < dictN; i++ {
			if err := need(4); err != nil {
				return nil, nil, err
			}
			sl := int(binary.LittleEndian.Uint32(payload))
			payload = payload[4:]
			if err := need(sl); err != nil {
				return nil, nil, err
			}
			dict = append(dict, string(payload[:sl]))
			payload = payload[sl:]
		}
		if err := need(rows * 4); err != nil {
			return nil, nil, err
		}
		codes := make([]int32, rows)
		for i := range codes {
			codes[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
		}
		d, err := table.StringDataFromParts(dict, codes)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %w", err, errs.ErrCorrupted)
		}
		return d, payload[rows*4:], nil
	default:
		return nil, nil, fmt.Errorf("unknown column type %v: %w", typ, errs.ErrCorrupted)
	}
}

func typeFromName(name string) (table.Type, error) {
	switch name {
	case "int64":
		return table.Int64, nil
	case "float64":
		return table.Float64, nil
	case "string":
		return table.String, nil
	default:
		return 0, fmt.Errorf("store: unknown column type %q: %w", name, errs.ErrCorrupted)
	}
}

// SegmentWriter is the handle for writing one segment file. Create one with
// Store.CreateSegment, write the table with WriteTable, make it durable with
// Commit, and always Close — an uncommitted writer's Close removes the temp
// file, a committed writer's Close is a no-op, so `defer w.Close()` after
// CreateSegment is both the error-path cleanup and the happy-path no-op.
type SegmentWriter struct {
	f         *os.File
	dir       string
	tmp       string
	final     string
	site      string
	in        *fault.Injector
	committed bool
	crashed   bool
	closed    bool
}

// WriteTable encodes t and writes it through the handle. The injector's
// durability faults apply here: a torn write persists only a prefix of the
// payload (and still reports success), a checksum flip silently corrupts one
// payload byte after the CRC was computed, and a crash aborts with
// ErrInjectedCrash leaving the bytes written so far on disk — exactly the
// partial state a SIGKILL at that instant would leave.
func (w *SegmentWriter) WriteTable(t *table.Table) error {
	raw, err := encodeSegment(t)
	if err != nil {
		return err
	}
	return w.writeRaw(raw)
}

func (w *SegmentWriter) writeRaw(raw []byte) error {
	if w.in.ShouldCrash(w.site) {
		w.crashed = true
		return fmt.Errorf("store: %s: %w", w.site, ErrInjectedCrash)
	}
	if w.in.FlipChecksum(w.site) && len(raw) > 16 {
		// Flip one bit in the middle of the payload, after the CRC in the
		// trailer was computed over the clean bytes.
		raw = append([]byte(nil), raw...)
		raw[len(raw)/2] ^= 0x40
	}
	if w.in.TornWrite(w.site) {
		// Only a prefix reaches the device; the write still reports success.
		raw = raw[:len(raw)/2]
	}
	if _, err := w.f.Write(raw); err != nil {
		return fmt.Errorf("store: write %s: %w", w.tmp, err)
	}
	return nil
}

// Commit makes the segment durable: fsync, close, rename into place, fsync
// the directory. After Commit, Close is a no-op.
func (w *SegmentWriter) Commit() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", w.tmp, err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", w.tmp, err)
	}
	w.closed = true
	if w.in.ShouldCrash(w.site + "-rename") {
		w.crashed = true
		return fmt.Errorf("store: %s-rename: %w", w.site, ErrInjectedCrash)
	}
	if err := os.Rename(w.tmp, w.final); err != nil {
		return fmt.Errorf("store: rename %s: %w", w.tmp, err)
	}
	w.committed = true
	return syncDir(w.dir)
}

// Close releases the handle. Uncommitted temp files are removed — except
// after an injected crash, which models a killed process: the OS reclaims
// the descriptor but deletes nothing, so the partial file stays on disk for
// recovery to cope with. Close is idempotent.
func (w *SegmentWriter) Close() error {
	if w.closed && (w.committed || w.crashed) {
		return nil
	}
	var err error
	if !w.closed {
		err = w.f.Close()
		w.closed = true
	}
	if !w.committed && !w.crashed {
		if rmErr := os.Remove(w.tmp); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
			err = rmErr
		}
	}
	return err
}

// SegmentReader is the handle for reading one segment file back. Open with
// OpenSegment, decode with ReadTable, and always Close.
type SegmentReader struct {
	f      *os.File
	path   string
	closed bool
}

// OpenSegment opens a segment file for validated reading.
func OpenSegment(path string) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open segment %s: %w", filepath.Base(path), err)
	}
	return &SegmentReader{f: f, path: path}, nil
}

// ReadTable reads the whole segment, validates its checksum, and rebuilds
// the table. Corruption of any kind wraps errs.ErrCorrupted.
func (r *SegmentReader) ReadTable() (*table.Table, error) {
	raw, err := io.ReadAll(r.f)
	if err != nil {
		return nil, fmt.Errorf("store: read segment %s: %w", filepath.Base(r.path), err)
	}
	t, err := decodeSegment(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(r.path), err)
	}
	return t, nil
}

// Close releases the handle; idempotent.
func (r *SegmentReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	return r.f.Close()
}

// syncDir fsyncs a directory so a completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
