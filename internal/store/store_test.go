package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/table"
)

// testTable builds a three-typed table with deterministic contents.
func testTable(name string, rows int, salt int64) *table.Table {
	schema := table.MustSchema(
		table.ColumnDef{Name: "k", Type: table.Int64},
		table.ColumnDef{Name: "v", Type: table.Float64},
		table.ColumnDef{Name: "tag", Type: table.String},
	)
	b := table.NewBuilder(name, schema, rows)
	for i := 0; i < rows; i++ {
		b.MustAppendRow(
			table.IntValue(int64(i)*7+salt),
			table.FloatValue(float64(i)*0.5+float64(salt)),
			table.StringValue(fmt.Sprintf("tag-%d", (int64(i)+salt)%5)),
		)
	}
	return b.Build()
}

// sameContents compares two tables cell by cell.
func sameContents(t *testing.T, a, b *table.Table) {
	t.Helper()
	if a.Name() != b.Name() {
		t.Fatalf("names differ: %q vs %q", a.Name(), b.Name())
	}
	if !a.Schema().Equal(b.Schema()) {
		t.Fatalf("schemas differ: %s vs %s", a.Schema(), b.Schema())
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for c := range ra {
			if !ra[c].Equal(rb[c]) {
				t.Fatalf("row %d col %d differ: %v vs %v", i, c, ra[c], rb[c])
			}
		}
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustCheckpoint(t *testing.T, s *Store) CheckpointStats {
	t.Helper()
	st, err := s.Checkpoint(context.Background(), nil)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return st
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	orig := []*table.Table{testTable("alpha", 100, 1), testTable("beta", 37, 2), testTable("gamma", 0, 3)}
	for _, tbl := range orig {
		if err := s.Put(tbl); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st := mustCheckpoint(t, s)
	if st.Version != 1 || st.Segments != 3 {
		t.Fatalf("checkpoint stats = %+v, want version 1, 3 segments", st)
	}
	s.Close()

	r := mustOpen(t, Options{Dir: dir})
	rec := r.Recovery()
	if rec.ManifestVersion != 1 || rec.TablesTotal != 3 || rec.Fallbacks != 0 {
		t.Fatalf("recovery stats = %+v", rec)
	}
	for _, want := range orig {
		got, cycles, err := r.Load(context.Background(), want.Name())
		if err != nil {
			t.Fatalf("Load(%q): %v", want.Name(), err)
		}
		if cycles != 0 {
			t.Fatalf("hot load of %q priced %v cycles, want 0", want.Name(), cycles)
		}
		sameContents(t, want, got)
	}
}

func TestIncrementalCheckpointReusesCleanSegments(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	s.Put(testTable("a", 50, 1))
	s.Put(testTable("b", 50, 2))
	mustCheckpoint(t, s)
	s.Put(testTable("b", 60, 9)) // only b is dirty now
	st := mustCheckpoint(t, s)
	if st.Version != 2 || st.Segments != 1 {
		t.Fatalf("second checkpoint = %+v, want version 2 with 1 segment", st)
	}
}

func TestCrashSitesNeverLoseCommittedVersion(t *testing.T) {
	// A crash at any durability step must leave the previously committed
	// version fully recoverable with its exact contents.
	sites := []string{"seg:a", "seg:a-rename", "manifest", "manifest-rename", "current", "current-rename"}
	for _, site := range sites {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			in := fault.New(fault.Config{Seed: 42, CrashSites: map[string]float64{site: 1}, MaxFaults: 1})
			s := mustOpen(t, Options{Dir: dir, Faults: in})
			v1a, v1b := testTable("a", 80, 1), testTable("b", 80, 2)
			s.Put(v1a)
			s.Put(v1b)
			// MaxFaults=1 is already budgeted for the kill below, so the
			// first checkpoint... would trip it. Shield version 1 by
			// spending the site probability only on the second run: use a
			// fresh injector armed after the first commit instead.
			s.opts.Faults = nil
			mustCheckpoint(t, s)
			s.opts.Faults = in

			s.Put(testTable("a", 99, 7)) // dirty for version 2
			_, err := s.Checkpoint(context.Background(), nil)
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("checkpoint with crash at %s: err = %v, want ErrInjectedCrash", site, err)
			}
			if got := in.Counts()[fault.ClassCrash]; got != 1 {
				t.Fatalf("crash fired %d times, want 1", got)
			}

			r := mustOpen(t, Options{Dir: dir})
			if v := r.Recovery().ManifestVersion; v != 1 {
				t.Fatalf("recovered version %d after crash at %s, want 1", v, site)
			}
			got, _, err := r.Load(context.Background(), "a")
			if err != nil {
				t.Fatalf("Load after recovery: %v", err)
			}
			sameContents(t, v1a, got)
			got, _, err = r.Load(context.Background(), "b")
			if err != nil {
				t.Fatalf("Load after recovery: %v", err)
			}
			sameContents(t, v1b, got)
		})
	}
}

func TestTornManifestFallsBack(t *testing.T) {
	dir := t.TempDir()
	in := fault.New(fault.Config{Seed: 7, TornWriteSites: map[string]float64{"manifest": 1}, MaxFaults: 1})
	s := mustOpen(t, Options{Dir: dir})
	want := testTable("a", 120, 3)
	s.Put(want)
	mustCheckpoint(t, s)

	s.opts.Faults = in
	s.Put(testTable("a", 10, 9))
	if _, err := s.Checkpoint(context.Background(), nil); err != nil {
		// The torn write reports success; the checkpoint believes it
		// committed version 2.
		t.Fatalf("torn checkpoint reported failure: %v", err)
	}

	r := mustOpen(t, Options{Dir: dir})
	rec := r.Recovery()
	if rec.ManifestVersion != 1 || rec.Fallbacks != 1 {
		t.Fatalf("recovery = %+v, want fallback to version 1", rec)
	}
	got, _, err := r.Load(context.Background(), "a")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sameContents(t, want, got)
}

func TestChecksumFlipDetectedAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	want := testTable("a", 200, 5)
	s.Put(want)
	mustCheckpoint(t, s)

	in := fault.New(fault.Config{Seed: 7, ChecksumFlipSites: map[string]float64{"seg:a": 1}, MaxFaults: 1})
	s.opts.Faults = in
	s.Put(testTable("a", 200, 6))
	if _, err := s.Checkpoint(context.Background(), nil); err != nil {
		t.Fatalf("flipped checkpoint reported failure: %v", err)
	}

	r := mustOpen(t, Options{Dir: dir})
	rec := r.Recovery()
	if rec.ManifestVersion != 1 || rec.Fallbacks != 1 || rec.CorruptSegments != 1 {
		t.Fatalf("recovery = %+v, want corrupt segment and fallback to 1", rec)
	}
	got, _, err := r.Load(context.Background(), "a")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sameContents(t, want, got)
}

func TestDeterministicReplay(t *testing.T) {
	// The same seeded schedule into two directories produces identical
	// on-disk outcomes and identical recovery.
	run := func(dir string) RecoveryStats {
		in := fault.New(fault.Config{
			Seed:          99,
			CrashProb:     0.2,
			TornWriteProb: 0.2,
			MaxFaults:     3,
		})
		s := mustOpen(t, Options{Dir: dir, Faults: in})
		for round := 0; round < 6; round++ {
			s.Put(testTable("a", 40+round, int64(round)))
			s.Put(testTable("b", 30, int64(round)*2))
			s.Checkpoint(context.Background(), nil) // errors are part of the schedule
		}
		s.Close()
		r := mustOpen(t, Options{Dir: dir})
		return r.Recovery()
	}
	rec1, rec2 := run(t.TempDir()), run(t.TempDir())
	rec1.WallNanos, rec2.WallNanos = 0, 0
	if rec1 != rec2 {
		t.Fatalf("replay diverged:\n  %+v\n  %+v", rec1, rec2)
	}
	if rec1.ManifestVersion == 0 {
		t.Fatalf("schedule committed nothing: %+v", rec1)
	}
}

func TestTieringEvictsColdAndPricesLoads(t *testing.T) {
	hot, cold := testTable("hot", 400, 1), testTable("cold", 400, 2)
	s := mustOpen(t, Options{
		Dir:      t.TempDir(),
		Machine:  hw.Laptop(),
		HotBytes: hot.Bytes() + 1, // room for exactly one table
	})
	s.Put(hot)
	s.Put(cold)
	// Heat up "hot": the estimator must rank it above "cold".
	for i := 0; i < 10; i++ {
		if _, _, err := s.Load(context.Background(), "hot"); err != nil {
			t.Fatalf("Load: %v", err)
		}
	}
	mustCheckpoint(t, s)
	if got := s.Tier("hot"); got != TierHot {
		t.Fatalf("hot table tier = %q", got)
	}
	if got := s.Tier("cold"); got != TierCold {
		t.Fatalf("cold table tier = %q", got)
	}
	got, cycles, err := s.Load(context.Background(), "cold")
	if err != nil {
		t.Fatalf("cold Load: %v", err)
	}
	if cycles <= 0 {
		t.Fatalf("cold load priced %v cycles, want > 0", cycles)
	}
	sameContents(t, cold, got)
	if s.ColdLoads() != 1 {
		t.Fatalf("cold loads = %d, want 1", s.ColdLoads())
	}
	// A second load is DRAM-resident again.
	if _, cycles, _ = s.Load(context.Background(), "cold"); cycles != 0 {
		t.Fatalf("second cold load priced %v cycles, want 0", cycles)
	}
}

func TestRecoveryLoadsHotEagerlyColdLazily(t *testing.T) {
	dir := t.TempDir()
	hot, cold := testTable("hot", 400, 1), testTable("cold", 400, 2)
	s := mustOpen(t, Options{Dir: dir, Machine: hw.Laptop(), HotBytes: hot.Bytes() + 1})
	s.Put(hot)
	s.Put(cold)
	for i := 0; i < 10; i++ {
		s.Load(context.Background(), "hot")
	}
	mustCheckpoint(t, s)

	r := mustOpen(t, Options{Dir: dir, Machine: hw.Laptop(), HotBytes: hot.Bytes() + 1})
	rec := r.Recovery()
	if rec.TablesTotal != 2 || rec.TablesHot != 1 {
		t.Fatalf("recovery = %+v, want 2 tables with 1 hot", rec)
	}
	if rec.SimCycles <= 0 {
		t.Fatalf("recovery priced %v cycles, want > 0", rec.SimCycles)
	}
	if _, cycles, _ := r.Load(context.Background(), "hot"); cycles != 0 {
		t.Fatalf("recovered hot table priced %v cycles, want 0", cycles)
	}
	if _, cycles, _ := r.Load(context.Background(), "cold"); cycles <= 0 {
		t.Fatalf("recovered cold table priced %v cycles, want > 0", cycles)
	}
}

func TestCheckpointGovernedByReservation(t *testing.T) {
	// A governor whose whole budget is smaller than the encode buffer: the
	// charge is denied, the checkpoint degrades instead of OOMing.
	tight := mem.NewGovernor(mem.Config{BudgetBytes: 16 << 10, PerQueryBytes: 512})
	res, err := tight.Reserve(512)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	defer res.Release()
	s := mustOpen(t, Options{Dir: t.TempDir()})
	s.Put(testTable("big", 5000, 1))
	_, err = s.Checkpoint(context.Background(), res)
	if !errors.Is(err, errs.ErrMemoryPressure) {
		t.Fatalf("governed checkpoint err = %v, want ErrMemoryPressure", err)
	}
	if s.Version() != 0 {
		t.Fatalf("version advanced to %d on failed checkpoint", s.Version())
	}
	// With a real budget the same checkpoint succeeds.
	roomy := mem.NewGovernor(mem.Config{BudgetBytes: 16 << 20})
	res2, err := roomy.Reserve(1 << 20)
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	defer res2.Release()
	if _, err := s.Checkpoint(context.Background(), res2); err != nil {
		t.Fatalf("Checkpoint with budget: %v", err)
	}
}

func TestGCKeepsBoundedManifests(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 8; i++ {
		s.Put(testTable("a", 20+i, int64(i)))
		mustCheckpoint(t, s)
	}
	if got := len(listManifests(dir)); got > manifestKeep {
		t.Fatalf("%d manifests retained, want <= %d", got, manifestKeep)
	}
	// Old segments unreferenced by the retained manifests are gone too.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() == "a-00000001.seg" {
			t.Fatalf("obsolete segment %s survived gc", e.Name())
		}
	}
}

func TestAllManifestsCorruptFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	s.Put(testTable("a", 30, 1))
	mustCheckpoint(t, s)
	// Corrupt every manifest on disk.
	for _, name := range listManifests(dir) {
		path := filepath.Join(dir, name)
		raw, _ := os.ReadFile(path)
		raw[len(raw)/2] ^= 0xFF
		os.WriteFile(path, raw, 0o644)
	}
	_, err := Open(Options{Dir: dir})
	if !errors.Is(err, errs.ErrCorrupted) {
		t.Fatalf("Open over corrupt manifests: err = %v, want ErrCorrupted", err)
	}
}

func TestValidationErrors(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir()})
	if err := s.Put(nil); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("Put(nil) err = %v", err)
	}
	if _, _, err := s.Load(context.Background(), "ghost"); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("Load(ghost) err = %v", err)
	}
	s.Close()
	if err := s.Put(testTable("a", 1, 1)); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("Put after Close err = %v", err)
	}
	if _, err := s.Checkpoint(context.Background(), nil); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("Checkpoint after Close err = %v", err)
	}
	if _, err := Open(Options{}); !errors.Is(err, errs.ErrInvalidInput) {
		t.Fatalf("Open with empty dir err = %v", err)
	}
}

func TestColsRoundTrip(t *testing.T) {
	cols := [][]int64{{1, 2, 3}, {4, 5, 6}}
	tbl, err := TableFromCols("rel", cols)
	if err != nil {
		t.Fatalf("TableFromCols: %v", err)
	}
	back, ok := ColsFromTable(tbl)
	if !ok {
		t.Fatal("ColsFromTable reported non-int64 columns")
	}
	if &back[0][0] != &cols[0][0] {
		t.Fatal("round trip copied the backing arrays")
	}
	if _, ok := ColsFromTable(testTable("x", 3, 1)); ok {
		t.Fatal("ColsFromTable accepted a non-int64 table")
	}
}
