package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
)

// Manifest commit protocol. A checkpoint becomes durable in two atomic
// renames, LevelDB-style:
//
//  1. the versioned manifest (MANIFEST-%08d) is written to a temp file,
//     fsynced, and renamed into place;
//  2. CURRENT — a one-line file naming the active manifest — is rewritten
//     the same way.
//
// A crash between the two leaves CURRENT pointing at the previous manifest:
// the new segments and manifest exist on disk but are not committed, and
// recovery ignores them. A crash (or torn write) that corrupts the file
// CURRENT points at is caught by the manifest envelope checksum, and
// recovery falls back to the newest older manifest that validates end to
// end. The store keeps the last manifestKeep versions (and their segments)
// precisely so that fallback has somewhere to land.
var manMagic = [8]byte{'H', 'W', 'M', 'A', 'N', '1', 0, 1}

const (
	currentName  = "CURRENT"
	manifestKeep = 3
)

// Manifest is one committed version of the store: which segment holds each
// table, and which tier the placement policy assigned it.
type Manifest struct {
	// Version is the monotonically increasing checkpoint number.
	Version uint64 `json:"version"`
	// Tables maps table name to its persisted location and placement.
	Tables map[string]TableEntry `json:"tables"`
}

// TableEntry locates one table inside a manifest version.
type TableEntry struct {
	// Segment is the segment file name (relative to the store directory).
	Segment string `json:"segment"`
	// Rows and Bytes describe the table (Bytes is the in-memory columnar
	// footprint, which is what the tiering budget governs).
	Rows  int   `json:"rows"`
	Bytes int64 `json:"bytes"`
	// Tier is the placement the policy chose: TierHot (DRAM-resident,
	// loaded eagerly at recovery) or TierCold (flash-resident, loaded on
	// first access).
	Tier string `json:"tier"`
}

// Placement tiers.
const (
	TierHot  = "hot"
	TierCold = "cold"
)

func manifestName(version uint64) string { return fmt.Sprintf("MANIFEST-%08d", version) }

// encodeManifest wraps the manifest JSON in the checksummed envelope
// (same shape as segments: magic, u32 length, body, crc32c).
func encodeManifest(m *Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(manMagic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(body)))
	buf.Write(u32[:])
	buf.Write(body)
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(buf.Bytes(), crcTable))
	buf.Write(u32[:])
	return buf.Bytes(), nil
}

// decodeManifest validates the envelope and returns the manifest. Any
// mismatch wraps errs.ErrCorrupted.
func decodeManifest(raw []byte) (*Manifest, error) {
	const envelope = 8 + 4 + 4
	if len(raw) < envelope {
		return nil, fmt.Errorf("store: manifest truncated at %d bytes: %w", len(raw), errs.ErrCorrupted)
	}
	if !bytes.Equal(raw[:8], manMagic[:]) {
		return nil, fmt.Errorf("store: bad manifest magic: %w", errs.ErrCorrupted)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("store: manifest checksum mismatch (got %08x want %08x): %w", got, want, errs.ErrCorrupted)
	}
	bodyLen := int(binary.LittleEndian.Uint32(raw[8:12]))
	if 12+bodyLen != len(body) {
		return nil, fmt.Errorf("store: manifest length %d inconsistent with file size %d: %w", bodyLen, len(raw), errs.ErrCorrupted)
	}
	var m Manifest
	if err := json.Unmarshal(raw[12:12+bodyLen], &m); err != nil {
		return nil, fmt.Errorf("store: manifest body: %w: %w", err, errs.ErrCorrupted)
	}
	return &m, nil
}

// atomicWrite writes data to dir/name via a fsynced temp file and rename,
// consulting the injector at the named durability site for crash, torn-write
// and checksum-flip faults.
func atomicWrite(dir, name string, data []byte, in *fault.Injector, site string) error {
	if in.ShouldCrash(site) {
		return fmt.Errorf("store: %s: %w", site, ErrInjectedCrash)
	}
	if in.FlipChecksum(site) && len(data) > 16 {
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0x40
	}
	if in.TornWrite(site) {
		data = data[:len(data)/2]
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if in.ShouldCrash(site + "-rename") {
		// Killed after the temp file hit disk but before the rename: the
		// temp file stays, the committed name is untouched.
		return fmt.Errorf("store: %s-rename: %w", site, ErrInjectedCrash)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("store: rename %s: %w", tmp, err)
	}
	return syncDir(dir)
}

// readCurrent returns the manifest file name CURRENT points at, or "" when
// there is no readable CURRENT (fresh directory, or torn CURRENT write).
// The name must match manifestName's exact MANIFEST-%08d shape: a torn
// write persists a prefix of the payload, and a truncated name such as
// "MANIFEST-000" sorts before every real manifest, which would silently
// filter all of them out of recovery.
func readCurrent(dir string) string {
	raw, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		return ""
	}
	name := strings.TrimSpace(string(raw))
	digits, ok := strings.CutPrefix(name, "MANIFEST-")
	if !ok || len(digits) != 8 {
		return ""
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return ""
		}
	}
	return name
}

// listManifests returns all manifest file names in dir, newest first.
func listManifests(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "MANIFEST-") && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names
}

// gc removes manifests older than the manifestKeep most recent, and any
// segment file that neither a retained (and still valid) manifest nor the
// live set references. The live set is the store's in-memory view of its
// current segments: it can name segments no valid on-disk manifest does —
// a torn manifest write reports success, so the store keeps treating its
// segments as committed and clean, and deleting them would turn one silent
// manifest corruption into unrecoverable loss of every later checkpoint
// that reuses them. Best-effort: gc errors never fail a committed
// checkpoint.
func gc(dir string, live map[string]bool) {
	manifests := listManifests(dir)
	if len(manifests) <= manifestKeep {
		manifests = manifests[:0]
	} else {
		manifests = manifests[manifestKeep:]
	}
	for _, name := range manifests {
		os.Remove(filepath.Join(dir, name))
	}
	referenced := make(map[string]bool, len(live))
	for seg := range live {
		referenced[seg] = true
	}
	for _, name := range listManifests(dir) {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		m, err := decodeManifest(raw)
		if err != nil {
			continue
		}
		for _, e := range m.Tables {
			referenced[e.Segment] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".seg") && !referenced[name] {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
