package store

import (
	"context"
	"testing"
)

func TestVerifyPutDuringCheckpointReview(t *testing.T) {
	for iter := 0; iter < 300; iter++ {
		dir := t.TempDir()
		s := mustOpen(t, Options{Dir: dir})
		s.Put(testTable("a", 200000, 1)) // big: slow segment write
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.Checkpoint(context.Background(), nil)
		}()
		newT := testTable("a", 10, 9)
		s.Put(newT) // races the checkpoint's I/O window
		<-done
		if _, err := s.Checkpoint(context.Background(), nil); err != nil {
			t.Fatalf("second checkpoint: %v", err)
		}
		r := mustOpen(t, Options{Dir: dir})
		got, _, err := r.Load(context.Background(), "a")
		if err != nil {
			t.Fatalf("iter %d: load after restart: %v", iter, err)
		}
		if got.NumRows() != 10 {
			t.Fatalf("iter %d: LOST UPDATE: durable rows=%d after restart, want 10 (latest Put never persisted)",
				iter, got.NumRows())
		}
	}
}
