// Package store is hwstar's durable storage tier: checkpointed columnar
// segments with per-segment checksums, an atomically-committed versioned
// manifest, crash-recovery replay, and a DRAM/flash tiering policy.
//
// The keynote's argument applies below DRAM too: real hardware crashes,
// tears writes across sector boundaries, and silently flips bits, so a
// durable tier is only trustworthy when exactly those failure modes are
// injected and survived. Every durability step consults the seeded fault
// injector (crash = abort with SIGKILL-equivalent on-disk state, torn write
// = prefix persisted but success reported, checksum flip = silent payload
// corruption), and recovery is deterministic under replay: the same seed
// and operation sequence produce the same on-disk state and the same
// recovered store.
//
// Commit protocol and recovery semantics are documented in manifest.go; the
// segment file format in segment.go. Placement is priced through the hw
// model's flash bandwidth tier: hot tables (by the hotcold estimator, within
// the DRAM budget) are loaded eagerly at recovery, cold tables stay on flash
// and pay the flash transfer on first access.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hotcold"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/table"
)

// ErrInjectedCrash marks a checkpoint aborted by an injected crash fault:
// the process "died" at a durability step, leaving partial state on disk.
// Tests and experiments match it with errors.Is to distinguish a staged kill
// from a real failure; recovery treats the two identically.
var ErrInjectedCrash = errors.New("store: injected crash")

// maxAccessLog bounds the tiering access log; when full the older half is
// dropped (recent slices dominate the smoothed estimate anyway).
const maxAccessLog = 1 << 16

// Options configures a Store.
type Options struct {
	// Dir is the store directory, created if absent.
	Dir string
	// Machine prices flash traffic (checkpoint writes, recovery and
	// cold-load reads) in simulated cycles through its flash bandwidth
	// tier. Nil disables pricing (SimCycles stay 0).
	Machine *hw.Machine
	// Faults injects durability faults at checkpoint sites. Nil injects
	// nothing.
	Faults *fault.Injector
	// HotBytes is the DRAM budget of the placement policy: the hottest
	// tables whose summed footprint fits are TierHot (resident, loaded
	// eagerly at recovery); the rest are TierCold (flash-resident, loaded
	// and priced on first access). Zero or negative pins everything hot.
	HotBytes int64
}

// RecoveryStats describes one Open's replay of durable state.
type RecoveryStats struct {
	// ManifestVersion is the version recovery landed on (0 = fresh store).
	ManifestVersion uint64 `json:"manifest_version"`
	// Fallbacks is how many newer manifest versions were rejected as
	// corrupt before one validated end to end.
	Fallbacks int `json:"fallbacks"`
	// CorruptSegments counts segment files that failed checksum or decode
	// validation during recovery (across rejected candidates).
	CorruptSegments int `json:"corrupt_segments"`
	// TablesTotal and TablesHot count recovered tables and how many the
	// placement policy made DRAM-resident.
	TablesTotal int `json:"tables_total"`
	TablesHot   int `json:"tables_hot"`
	// BytesValidated is the segment bytes read and checksum-validated.
	BytesValidated int64 `json:"bytes_validated"`
	// SimCycles is the modeled flash-read cost of the replay; WallNanos
	// the measured wall time.
	SimCycles float64 `json:"sim_cycles"`
	WallNanos int64   `json:"wall_nanos"`
}

// CheckpointStats describes one committed checkpoint.
type CheckpointStats struct {
	// Version is the manifest version the checkpoint committed.
	Version uint64 `json:"version"`
	// Segments is how many segment files were written (dirty tables only;
	// clean tables keep their previous segments).
	Segments int `json:"segments"`
	// Bytes is the segment bytes written; SimCycles the modeled flash-write
	// cost; WallNanos the measured wall time.
	Bytes     int64   `json:"bytes"`
	SimCycles float64 `json:"sim_cycles"`
	WallNanos int64   `json:"wall_nanos"`
}

// entry is the in-memory state of one table.
type entry struct {
	t     *table.Table // nil when cold (flash-resident, not yet loaded)
	seg   string       // segment file backing the last committed version
	rows  int
	bytes int64
	tier  string
	dirty bool // differs from the last committed segment
	id    int64
}

// Store is the durable tier. All methods are safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	cpMu      sync.Mutex // serializes checkpoints (single-flight)
	opts      Options
	version   uint64
	tables    map[string]*entry
	ids       map[string]int64
	nextID    int64
	accessLog []int64
	closed    bool

	recovery  RecoveryStats
	lastCP    CheckpointStats
	coldLoads int64
}

// Open opens (or creates) the store at opts.Dir and replays durable state:
// it follows CURRENT to the committed manifest, validates every referenced
// segment checksum, and falls back to the newest older manifest that
// validates end to end when anything is corrupt. Hot tables are loaded into
// DRAM eagerly; cold tables stay on flash until first Load. A directory
// whose manifests are all corrupt is unrecoverable: Open fails wrapping
// errs.ErrCorrupted rather than silently serving an empty store.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: empty directory: %w", errs.ErrInvalidInput)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{opts: opts, tables: make(map[string]*entry), ids: make(map[string]int64)}
	start := time.Now()
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.recovery.WallNanos = time.Since(start).Nanoseconds()
	return s, nil
}

// recover replays durable state into s. Called once from Open.
func (s *Store) recover() error {
	dir := s.opts.Dir
	removeOrphanTemps(dir)
	candidates := s.recoveryCandidates()
	if len(candidates) == 0 {
		return nil // fresh store, version 0
	}
	var lastErr error
	for _, name := range candidates {
		clear(s.tables) // drop hot tables staged by a rejected candidate
		m, bytesRead, corrupt, err := s.tryManifest(name)
		s.recovery.BytesValidated += bytesRead
		s.recovery.CorruptSegments += corrupt
		if err != nil {
			s.recovery.Fallbacks++
			lastErr = err
			continue
		}
		s.installManifest(m)
		if s.opts.Machine != nil {
			s.recovery.SimCycles = float64(s.recovery.BytesValidated) / s.opts.Machine.FlashBandwidth(1)
		}
		return nil
	}
	return fmt.Errorf("store: no manifest validates (%d candidates, last: %w): %w",
		len(candidates), lastErr, errs.ErrCorrupted)
}

// recoveryCandidates orders manifests for recovery: the one CURRENT commits
// first, then strictly older ones newest-first. Manifests newer than CURRENT
// are uncommitted leftovers of an interrupted checkpoint and are ignored —
// unless CURRENT itself is unreadable (torn), in which case every manifest
// on disk is tried newest-first.
func (s *Store) recoveryCandidates() []string {
	all := listManifests(s.opts.Dir)
	current := readCurrent(s.opts.Dir)
	if current == "" {
		return all
	}
	var out []string
	for _, name := range all {
		if name <= current { // zero-padded names sort like versions
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		// CURRENT parsed but commits nothing on disk — a torn or stale
		// write. Treating it as authoritative would recover an empty store
		// over real manifests; distrust it and try everything.
		return all
	}
	return out
}

// tryManifest validates one manifest candidate and all segments it
// references, returning the decoded manifest on success. Hot tables come
// back decoded; cold tables are validated and dropped.
func (s *Store) tryManifest(name string) (m *Manifest, bytesRead int64, corruptSegments int, err error) {
	raw, err := os.ReadFile(filepath.Join(s.opts.Dir, name))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("store: read %s: %w: %w", name, err, errs.ErrCorrupted)
	}
	m, err = decodeManifest(raw)
	if err != nil {
		return nil, 0, 0, err
	}
	tbls := make([]string, 0, len(m.Tables))
	for tbl := range m.Tables {
		tbls = append(tbls, tbl)
	}
	sort.Strings(tbls) // deterministic validation order (and stats) under replay
	for _, tbl := range tbls {
		e := m.Tables[tbl]
		t, n, segErr := readSegment(filepath.Join(s.opts.Dir, e.Segment))
		bytesRead += n
		if segErr != nil {
			return nil, bytesRead, 1, fmt.Errorf("store: manifest %s table %q: %w", name, tbl, segErr)
		}
		if e.Tier == TierHot {
			s.stageRecovered(tbl, t, e)
		}
	}
	return m, bytesRead, 0, nil
}

// stageRecovered parks a validated hot table; installManifest adopts it.
func (s *Store) stageRecovered(name string, t *table.Table, e TableEntry) {
	s.tables[name] = &entry{t: t, seg: e.Segment, rows: e.Rows, bytes: e.Bytes, tier: e.Tier, id: s.idFor(name)}
}

// installManifest adopts a fully validated manifest as the store state,
// re-fitting the recorded placement to THIS boot's hot budget: the manifest
// records the tiers of the machine that wrote it, and a restart on a
// smaller-DRAM profile must not inflate the resident set past its own
// Options.HotBytes. Recorded-hot tables keep priority (largest first, then
// name, deterministically) and the overflow is demoted to cold — validated
// already, reloaded from flash on first access. Nothing is promoted at
// boot: there is no access history yet to justify it.
func (s *Store) installManifest(m *Manifest) {
	s.version = m.Version
	names := make([]string, 0, len(m.Tables))
	for name := range m.Tables {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic tiering-id assignment
	for _, name := range names {
		e := m.Tables[name]
		if _, hot := s.tables[name]; !hot {
			s.tables[name] = &entry{seg: e.Segment, rows: e.Rows, bytes: e.Bytes, tier: e.Tier, id: s.idFor(name)}
		}
	}
	if s.opts.HotBytes > 0 {
		fit := make([]string, 0, len(names))
		for _, name := range names {
			if s.tables[name].tier == TierHot {
				fit = append(fit, name)
			}
		}
		sort.Slice(fit, func(i, j int) bool {
			a, b := s.tables[fit[i]], s.tables[fit[j]]
			if a.bytes != b.bytes {
				return a.bytes > b.bytes
			}
			return fit[i] < fit[j]
		})
		var resident int64
		for _, name := range fit {
			e := s.tables[name]
			if resident+e.bytes <= s.opts.HotBytes {
				resident += e.bytes
				continue
			}
			e.tier, e.t = TierCold, nil
		}
	}
	s.recovery.ManifestVersion = m.Version
	s.recovery.TablesTotal = len(m.Tables)
	for _, e := range s.tables {
		if e.t != nil {
			s.recovery.TablesHot++
		}
	}
}

// readSegment opens, validates and decodes one segment file, returning the
// table and the file size.
func readSegment(path string) (*table.Table, int64, error) {
	r, err := OpenSegment(path)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %w", err, errs.ErrCorrupted)
	}
	defer r.Close()
	t, err := r.ReadTable()
	if err != nil {
		return nil, 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: stat %s: %w", filepath.Base(path), err)
	}
	return t, fi.Size(), nil
}

// removeOrphanTemps clears temp files a killed checkpoint left behind.
func removeOrphanTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// idFor returns the stable tiering id of a table name. Callers hold s.mu
// (or run single-threaded inside Open).
func (s *Store) idFor(name string) int64 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := s.nextID
	s.nextID++
	s.ids[name] = id
	return id
}

// Put stages a table: it becomes visible to Load immediately and is written
// out by the next checkpoint. Tables are immutable; putting the same name
// again replaces it (and re-dirties it).
func (s *Store) Put(t *table.Table) error {
	if t == nil {
		return fmt.Errorf("store: nil table: %w", errs.ErrInvalidInput)
	}
	if t.Name() == "" {
		return fmt.Errorf("store: table with empty name: %w", errs.ErrInvalidInput)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: put %q: %w", t.Name(), errs.ErrClosed)
	}
	id := s.idFor(t.Name())
	s.tables[t.Name()] = &entry{t: t, rows: t.NumRows(), bytes: t.Bytes(), tier: TierHot, dirty: true, id: id}
	s.noteAccess(id)
	return nil
}

// Load returns the named table, reading it from flash when it is cold. The
// access is recorded for the placement policy, and a cold load is priced at
// flash bandwidth (returned cycles accumulate in Stats). Unknown names
// wrap errs.ErrInvalidInput.
func (s *Store) Load(ctx context.Context, name string) (*table.Table, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("store: load %q: %w", name, err)
	}
	s.mu.Lock()
	e, ok := s.tables[name]
	if !ok {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("store: unknown table %q: %w", name, errs.ErrInvalidInput)
	}
	s.noteAccess(e.id)
	if e.t != nil {
		t := e.t
		s.mu.Unlock()
		return t, 0, nil
	}
	seg := e.seg
	s.mu.Unlock()

	// Cold load: read and validate outside the lock — segments are
	// immutable once committed, and a concurrent identical load is
	// harmless (last writer wins with an equal table).
	t, n, err := readSegment(filepath.Join(s.opts.Dir, seg))
	if err != nil {
		return nil, 0, err
	}
	var cycles float64
	if s.opts.Machine != nil {
		cycles = float64(n) / s.opts.Machine.FlashBandwidth(1)
	}
	s.mu.Lock()
	if cur, ok := s.tables[name]; ok && cur.t == nil {
		cur.t = t
	}
	s.coldLoads++
	s.mu.Unlock()
	return t, cycles, nil
}

// noteAccess appends to the tiering access log. Callers hold s.mu.
func (s *Store) noteAccess(id int64) {
	if len(s.accessLog) >= maxAccessLog {
		s.accessLog = append(s.accessLog[:0], s.accessLog[maxAccessLog/2:]...)
	}
	s.accessLog = append(s.accessLog, id)
}

// Tables returns the known table names, sorted.
func (s *Store) Tables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Tier returns the placement tier of the named table ("" when unknown).
func (s *Store) Tier(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.tables[name]; ok {
		return e.tier
	}
	return ""
}

// CreateSegment returns a writer for one table's segment at the given
// version. The caller must Close the writer on every path; Commit makes the
// segment durable. Exposed for the checkpoint path and for tests; most
// callers want Checkpoint.
func (s *Store) CreateSegment(tbl string, version uint64) (*SegmentWriter, error) {
	final := filepath.Join(s.opts.Dir, fmt.Sprintf("%s-%08d.seg", tbl, version))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create %s: %w", filepath.Base(tmp), err)
	}
	return &SegmentWriter{f: f, dir: s.opts.Dir, tmp: tmp, final: final, site: "seg:" + tbl, in: s.opts.Faults}, nil
}

// Checkpoint writes every dirty table as a fresh segment, commits a new
// manifest version, and applies the placement policy. Encode buffers are
// charged against res (nil skips governance): a checkpoint on a loaded
// server degrades to ErrMemoryPressure instead of OOMing it. Injected
// durability faults surface as ErrInjectedCrash (partial on-disk state
// preserved) or corrupt committed files recovery must survive.
func (s *Store) Checkpoint(ctx context.Context, res *mem.Reservation) (CheckpointStats, error) {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	start := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CheckpointStats{}, fmt.Errorf("store: checkpoint: %w", errs.ErrClosed)
	}
	version := s.version + 1
	type job struct {
		name string
		t    *table.Table
	}
	var jobs []job
	manifest := &Manifest{Version: version, Tables: make(map[string]TableEntry, len(s.tables))}
	// snap records which entry object each manifest row was built from: a
	// Put racing the I/O window below replaces the map entry, and state on
	// the replacement must not be touched afterwards — the segment this
	// checkpoint writes holds the old contents.
	snap := make(map[string]*entry, len(s.tables))
	for name, e := range s.tables {
		snap[name] = e
		if e.dirty {
			jobs = append(jobs, job{name, e.t})
		} else {
			manifest.Tables[name] = TableEntry{Segment: e.seg, Rows: e.rows, Bytes: e.bytes, Tier: e.tier}
		}
	}
	tiers := s.placements()
	s.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].name < jobs[j].name })

	stats := CheckpointStats{Version: version}
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return stats, fmt.Errorf("store: checkpoint aborted: %w", err)
		}
		n, err := s.writeSegment(j.name, j.t, version, res)
		if err != nil {
			return stats, err
		}
		manifest.Tables[j.name] = TableEntry{
			Segment: fmt.Sprintf("%s-%08d.seg", j.name, version),
			Rows:    j.t.NumRows(), Bytes: j.t.Bytes(),
		}
		stats.Segments++
		stats.Bytes += n
	}
	for name, e := range manifest.Tables {
		e.Tier = tiers[name]
		manifest.Tables[name] = e
	}

	raw, err := encodeManifest(manifest)
	if err != nil {
		return stats, err
	}
	if err := atomicWrite(s.opts.Dir, manifestName(version), raw, s.opts.Faults, "manifest"); err != nil {
		return stats, err
	}
	if err := atomicWrite(s.opts.Dir, currentName, []byte(manifestName(version)+"\n"), s.opts.Faults, "current"); err != nil {
		return stats, err
	}

	s.mu.Lock()
	s.version = version
	for name, e := range s.tables {
		me, ok := manifest.Tables[name]
		if !ok || snap[name] != e {
			// Absent from the manifest, or re-Put while the segments were
			// being written: the durable state is behind this entry, so it
			// stays dirty for the next checkpoint to pick up.
			continue
		}
		e.seg, e.tier, e.dirty = me.Segment, me.Tier, false
		if e.tier == TierCold {
			e.t = nil // evict: cold tables live on flash, reloaded on access
		}
	}
	if s.opts.Machine != nil {
		stats.SimCycles = float64(stats.Bytes) / s.opts.Machine.FlashBandwidth(1)
	}
	stats.WallNanos = time.Since(start).Nanoseconds()
	s.lastCP = stats
	// Snapshot the live segment set for gc: segments the in-memory state
	// still references must survive even when no valid on-disk manifest
	// names them (torn manifest writes report success).
	live := make(map[string]bool, len(s.tables))
	for _, e := range s.tables {
		if e.seg != "" {
			live[e.seg] = true
		}
	}
	s.mu.Unlock()

	gc(s.opts.Dir, live)
	return stats, nil
}

// writeSegment encodes and durably writes one table's segment, charging the
// encode buffer against res for the duration.
func (s *Store) writeSegment(name string, t *table.Table, version uint64, res *mem.Reservation) (int64, error) {
	charge := t.Bytes() + 4096 // encode buffer ≈ columnar footprint + envelope
	if res != nil {
		if err := res.Charge("checkpoint-encode", -1, charge); err != nil {
			return 0, fmt.Errorf("store: checkpoint %q: %w", name, err)
		}
		defer res.Uncharge(charge)
	}
	w, err := s.CreateSegment(name, version)
	if err != nil {
		return 0, err
	}
	defer w.Close()
	raw, err := encodeSegment(t)
	if err != nil {
		return 0, err
	}
	if err := w.writeRaw(raw); err != nil {
		return 0, err
	}
	if err := w.Commit(); err != nil {
		return 0, err
	}
	return int64(len(raw)), nil
}

// placements runs the tiering policy: smooth the access log, rank tables by
// estimated frequency, and pin the hottest within the DRAM budget. Callers
// hold s.mu.
func (s *Store) placements() map[string]string {
	out := make(map[string]string, len(s.tables))
	if s.opts.HotBytes <= 0 {
		for name := range s.tables {
			out[name] = TierHot
		}
		return out
	}
	est, err := hotcold.NewEstimator().Estimate(s.accessLog)
	if err != nil {
		est = map[int64]float64{}
	}
	type cand struct {
		name  string
		bytes int64
		f     float64
		id    int64
	}
	cands := make([]cand, 0, len(s.tables))
	for name, e := range s.tables {
		cands = append(cands, cand{name, e.bytes, est[e.id], e.id})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].f != cands[j].f {
			return cands[i].f > cands[j].f
		}
		return cands[i].id < cands[j].id
	})
	var used int64
	for _, c := range cands {
		if c.f > 0 && used+c.bytes <= s.opts.HotBytes {
			out[c.name] = TierHot
			used += c.bytes
		} else {
			out[c.name] = TierCold
		}
	}
	return out
}

// Version returns the last committed manifest version (0 before the first
// checkpoint of a fresh store).
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Recovery returns the stats of the Open that created this store.
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// LastCheckpoint returns the stats of the most recent committed checkpoint.
func (s *Store) LastCheckpoint() CheckpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCP
}

// ColdLoads returns how many Loads had to read flash.
func (s *Store) ColdLoads() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coldLoads
}

// Close marks the store closed; subsequent Puts and Checkpoints fail with
// errs.ErrClosed. It never discards staged data — callers checkpoint first
// when they want durability.
func (s *Store) Close() error {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// TableFromCols wraps a server relation ([][]int64 columns) as a Table with
// columns c0..cN, sharing the backing arrays (zero copy).
func TableFromCols(name string, cols [][]int64) (*table.Table, error) {
	defs := make([]table.ColumnDef, len(cols))
	data := make([]table.ColumnData, len(cols))
	for i, c := range cols {
		defs[i] = table.ColumnDef{Name: fmt.Sprintf("c%d", i), Type: table.Int64}
		data[i] = &table.Int64Data{Values: c}
	}
	schema, err := table.NewSchema(defs...)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return table.FromColumns(name, schema, data)
}

// ColsFromTable unwraps an all-int64 table back into [][]int64 columns,
// sharing the backing arrays (zero copy). Returns false when any column is
// not int64.
func ColsFromTable(t *table.Table) ([][]int64, bool) {
	cols := make([][]int64, t.Schema().NumColumns())
	for i := range cols {
		d, ok := t.Column(i).(*table.Int64Data)
		if !ok {
			return nil, false
		}
		cols[i] = d.Values
	}
	return cols, true
}
