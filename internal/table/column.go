package table

import "fmt"

// ColumnData is the storage of one column.
type ColumnData interface {
	// Type returns the column's value type.
	Type() Type
	// Len returns the number of rows.
	Len() int
	// ValueAt returns row i as a dynamically typed Value (baseline path).
	ValueAt(i int) Value
	// Bytes returns the in-memory footprint of the column payload.
	Bytes() int64
}

// Int64Data stores an int64 column densely.
type Int64Data struct {
	Values []int64
}

// Type implements ColumnData.
func (d *Int64Data) Type() Type { return Int64 }

// Len implements ColumnData.
func (d *Int64Data) Len() int { return len(d.Values) }

// ValueAt implements ColumnData.
func (d *Int64Data) ValueAt(i int) Value { return IntValue(d.Values[i]) }

// Bytes implements ColumnData.
func (d *Int64Data) Bytes() int64 { return int64(len(d.Values)) * 8 }

// Float64Data stores a float64 column densely.
type Float64Data struct {
	Values []float64
}

// Type implements ColumnData.
func (d *Float64Data) Type() Type { return Float64 }

// Len implements ColumnData.
func (d *Float64Data) Len() int { return len(d.Values) }

// ValueAt implements ColumnData.
func (d *Float64Data) ValueAt(i int) Value { return FloatValue(d.Values[i]) }

// Bytes implements ColumnData.
func (d *Float64Data) Bytes() int64 { return int64(len(d.Values)) * 8 }

// StringData stores a string column dictionary-encoded: Codes[i] indexes
// Dict. Dictionary encoding turns string predicates into integer compares —
// one of the bandwidth-saving techniques the hardware-conscious literature
// mandates for column stores.
type StringData struct {
	Dict  []string
	Codes []int32
	index map[string]int32
}

// NewStringData returns an empty dictionary-encoded string column.
func NewStringData() *StringData {
	return &StringData{index: make(map[string]int32)}
}

// Append adds one string value, interning it in the dictionary.
func (d *StringData) Append(s string) {
	code, ok := d.index[s]
	if !ok {
		code = int32(len(d.Dict))
		d.Dict = append(d.Dict, s)
		if d.index == nil {
			d.index = make(map[string]int32)
		}
		d.index[s] = code
	}
	d.Codes = append(d.Codes, code)
}

// StringDataFromParts reconstructs a dictionary-encoded column from its
// persisted parts — the path the segment store uses when loading a
// checkpoint — rebuilding the intern index so Code lookups and further
// Appends behave exactly as on the original column.
func StringDataFromParts(dict []string, codes []int32) (*StringData, error) {
	d := &StringData{Dict: dict, Codes: codes, index: make(map[string]int32, len(dict))}
	for i, s := range dict {
		if _, dup := d.index[s]; dup {
			return nil, fmt.Errorf("table: duplicate dictionary entry %q", s)
		}
		d.index[s] = int32(i)
	}
	for _, c := range codes {
		if c < 0 || int(c) >= len(dict) {
			return nil, fmt.Errorf("table: dictionary code %d out of range [0,%d)", c, len(dict))
		}
	}
	return d, nil
}

// Code returns the dictionary code for s, or -1 when s does not occur in the
// column. Predicates use this to compare codes instead of strings.
func (d *StringData) Code(s string) int32 {
	if code, ok := d.index[s]; ok {
		return code
	}
	return -1
}

// Type implements ColumnData.
func (d *StringData) Type() Type { return String }

// Len implements ColumnData.
func (d *StringData) Len() int { return len(d.Codes) }

// ValueAt implements ColumnData.
func (d *StringData) ValueAt(i int) Value { return StringValue(d.Dict[d.Codes[i]]) }

// Bytes implements ColumnData: code array plus dictionary payload.
func (d *StringData) Bytes() int64 {
	b := int64(len(d.Codes)) * 4
	for _, s := range d.Dict {
		b += int64(len(s)) + 16 // string header approximation
	}
	return b
}

// CardinalityOfDict returns the number of distinct values.
func (d *StringData) CardinalityOfDict() int { return len(d.Dict) }

// NewColumnData returns empty storage for the given type with capacity hint n.
func NewColumnData(t Type, n int) ColumnData {
	switch t {
	case Int64:
		return &Int64Data{Values: make([]int64, 0, n)}
	case Float64:
		return &Float64Data{Values: make([]float64, 0, n)}
	case String:
		d := NewStringData()
		d.Codes = make([]int32, 0, n)
		return d
	default:
		panic(fmt.Sprintf("table: unknown type %d", int(t)))
	}
}
