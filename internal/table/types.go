// Package table defines the relational data model of hwstar: schemas, typed
// columns, and in-memory tables. Data is stored column-wise with dictionary
// encoding for strings — the representation the hardware-conscious literature
// converged on — while row-oriented access is provided for the
// hardware-oblivious baselines and for layout experiments.
package table

import "fmt"

// Type enumerates the column types supported by the engine.
type Type int

const (
	// Int64 is a signed 64-bit integer column.
	Int64 Type = iota
	// Float64 is a 64-bit floating point column.
	Float64
	// String is a dictionary-encoded string column.
	String
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Width returns the in-memory width in bytes of one value of this type as
// stored columnar: 8 for numerics, 4 for a dictionary code.
func (t Type) Width() int64 {
	switch t {
	case Int64, Float64:
		return 8
	case String:
		return 4
	default:
		panic(fmt.Sprintf("table: unknown type %d", int(t)))
	}
}

// Value is a dynamically typed cell used by the tuple-at-a-time baseline and
// by tests; the vectorized engine never materializes Values.
type Value struct {
	Kind Type
	I    int64
	F    float64
	S    string
}

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{Kind: Int64, I: v} }

// FloatValue wraps a float64.
func FloatValue(v float64) Value { return Value{Kind: Float64, F: v} }

// StringValue wraps a string.
func StringValue(v string) Value { return Value{Kind: String, S: v} }

// Equal compares two values of the same kind; values of different kinds are
// never equal.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case Int64:
		return v.I == o.I
	case Float64:
		return v.F == o.F
	case String:
		return v.S == o.S
	default:
		return false
	}
}

// String renders the value.
func (v Value) String() string {
	switch v.Kind {
	case Int64:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case String:
		return v.S
	default:
		return "?"
	}
}
