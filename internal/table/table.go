package table

import "fmt"

// Table is an immutable in-memory relation: a schema plus column storage of
// equal length. Build tables with a Builder or FromColumns; once built, a
// table is safe for concurrent readers.
type Table struct {
	name   string
	schema *Schema
	cols   []ColumnData
	rows   int
}

// FromColumns assembles a table from pre-built column data. All columns must
// match the schema types and have equal length.
func FromColumns(name string, schema *Schema, cols []ColumnData) (*Table, error) {
	if len(cols) != schema.NumColumns() {
		return nil, fmt.Errorf("table %q: %d columns for schema of %d", name, len(cols), schema.NumColumns())
	}
	rows := -1
	for i, c := range cols {
		def := schema.Column(i)
		if c.Type() != def.Type {
			return nil, fmt.Errorf("table %q: column %q is %s, schema says %s", name, def.Name, c.Type(), def.Type)
		}
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("table %q: column %q has %d rows, expected %d", name, def.Name, c.Len(), rows)
		}
	}
	if rows == -1 {
		rows = 0
	}
	return &Table{name: name, schema: schema, cols: cols, rows: rows}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// Column returns the storage of column i.
func (t *Table) Column(i int) ColumnData { return t.cols[i] }

// ColumnByName returns the storage of the named column, or an error.
func (t *Table) ColumnByName(name string) (ColumnData, error) {
	i := t.schema.ColumnIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("table %q: no column %q", t.name, name)
	}
	return t.cols[i], nil
}

// Int64Column returns the named column as []int64, or an error when the
// column is missing or not Int64. This is the fast path the vectorized
// engine uses.
func (t *Table) Int64Column(name string) ([]int64, error) {
	c, err := t.ColumnByName(name)
	if err != nil {
		return nil, err
	}
	d, ok := c.(*Int64Data)
	if !ok {
		return nil, fmt.Errorf("table %q: column %q is %s, not int64", t.name, name, c.Type())
	}
	return d.Values, nil
}

// Float64Column returns the named column as []float64, or an error.
func (t *Table) Float64Column(name string) ([]float64, error) {
	c, err := t.ColumnByName(name)
	if err != nil {
		return nil, err
	}
	d, ok := c.(*Float64Data)
	if !ok {
		return nil, fmt.Errorf("table %q: column %q is %s, not float64", t.name, name, c.Type())
	}
	return d.Values, nil
}

// StringColumn returns the named column's dictionary-encoded storage.
func (t *Table) StringColumn(name string) (*StringData, error) {
	c, err := t.ColumnByName(name)
	if err != nil {
		return nil, err
	}
	d, ok := c.(*StringData)
	if !ok {
		return nil, fmt.Errorf("table %q: column %q is %s, not string", t.name, name, c.Type())
	}
	return d, nil
}

// Row materializes row i as dynamically typed values (baseline path).
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.cols))
	for c, col := range t.cols {
		out[c] = col.ValueAt(i)
	}
	return out
}

// Bytes returns the total columnar footprint of the table.
func (t *Table) Bytes() int64 {
	var b int64
	for _, c := range t.cols {
		b += c.Bytes()
	}
	return b
}

// Builder accumulates rows and produces a Table.
type Builder struct {
	name   string
	schema *Schema
	cols   []ColumnData
}

// NewBuilder returns a builder for a table with the given schema. capacity is
// a row-count hint.
func NewBuilder(name string, schema *Schema, capacity int) *Builder {
	cols := make([]ColumnData, schema.NumColumns())
	for i := range cols {
		cols[i] = NewColumnData(schema.Column(i).Type, capacity)
	}
	return &Builder{name: name, schema: schema, cols: cols}
}

// AppendRow adds one row; values must match the schema in count and kind.
func (b *Builder) AppendRow(vals ...Value) error {
	if len(vals) != b.schema.NumColumns() {
		return fmt.Errorf("table %q: AppendRow got %d values for %d columns", b.name, len(vals), b.schema.NumColumns())
	}
	for i, v := range vals {
		def := b.schema.Column(i)
		if v.Kind != def.Type {
			return fmt.Errorf("table %q: column %q wants %s, got %s", b.name, def.Name, def.Type, v.Kind)
		}
	}
	for i, v := range vals {
		switch c := b.cols[i].(type) {
		case *Int64Data:
			c.Values = append(c.Values, v.I)
		case *Float64Data:
			c.Values = append(c.Values, v.F)
		case *StringData:
			c.Append(v.S)
		}
	}
	return nil
}

// MustAppendRow is AppendRow that panics on error, for test fixtures.
func (b *Builder) MustAppendRow(vals ...Value) {
	if err := b.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// Build finalizes the table. The builder must not be used afterwards.
func (b *Builder) Build() *Table {
	t, err := FromColumns(b.name, b.schema, b.cols)
	if err != nil {
		// All invariants are enforced during AppendRow; reaching here is a
		// programming error inside the builder.
		panic(err)
	}
	return t
}
