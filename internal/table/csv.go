package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV builds a table from CSV data with a header row. Column types come
// from the given schema, whose column names must match the header exactly
// (order included). Numeric parse errors report the offending row and
// column.
func ReadCSV(name string, schema *Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = schema.NumColumns()

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table %q: reading CSV header: %w", name, err)
	}
	for i, h := range header {
		if h != schema.Column(i).Name {
			return nil, fmt.Errorf("table %q: header column %d is %q, schema says %q",
				name, i, h, schema.Column(i).Name)
		}
	}

	b := NewBuilder(name, schema, 1024)
	rowNum := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table %q: row %d: %w", name, rowNum, err)
		}
		rowNum++
		vals := make([]Value, len(rec))
		for c, cell := range rec {
			def := schema.Column(c)
			switch def.Type {
			case Int64:
				v, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("table %q: row %d column %q: %q is not an int64",
						name, rowNum, def.Name, cell)
				}
				vals[c] = IntValue(v)
			case Float64:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("table %q: row %d column %q: %q is not a float64",
						name, rowNum, def.Name, cell)
				}
				vals[c] = FloatValue(v)
			case String:
				vals[c] = StringValue(cell)
			}
		}
		if err := b.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// WriteCSV writes the table as CSV with a header row. Floats use the
// shortest round-trippable representation, so ReadCSV(WriteCSV(t)) is
// value-identical.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.schema.NumColumns())
	for i := range header {
		header[i] = t.schema.Column(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for r := 0; r < t.NumRows(); r++ {
		for c, col := range t.cols {
			switch d := col.(type) {
			case *Int64Data:
				rec[c] = strconv.FormatInt(d.Values[r], 10)
			case *Float64Data:
				rec[c] = strconv.FormatFloat(d.Values[r], 'g', -1, 64)
			case *StringData:
				rec[c] = d.Dict[d.Codes[r]]
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
