package table

import (
	"strings"
	"testing"
	"testing/quick"
)

func csvSchema() *Schema {
	return MustSchema(
		ColumnDef{Name: "id", Type: Int64},
		ColumnDef{Name: "price", Type: Float64},
		ColumnDef{Name: "city", Type: String},
	)
}

func TestReadCSV(t *testing.T) {
	in := "id,price,city\n1,9.5,zurich\n2,3.25,basel\n-3,0.125,zurich\n"
	tbl, err := ReadCSV("orders", csvSchema(), strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	row := tbl.Row(2)
	if row[0].I != -3 || row[1].F != 0.125 || row[2].S != "zurich" {
		t.Fatalf("row 2 = %v", row)
	}
	cities, _ := tbl.StringColumn("city")
	if cities.CardinalityOfDict() != 2 {
		t.Fatal("dictionary should dedupe repeated cities")
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := csvSchema()
	cases := map[string]string{
		"empty":        "",
		"wrong header": "id,cost,city\n1,2,x\n",
		"bad int":      "id,price,city\nx,2,a\n",
		"bad float":    "id,price,city\n1,x,a\n",
		"short row":    "id,price,city\n1,2\n",
		"long row":     "id,price,city\n1,2,a,extra\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV("t", s, strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Header only is a valid empty table.
	tbl, err := ReadCSV("t", s, strings.NewReader("id,price,city\n"))
	if err != nil || tbl.NumRows() != 0 {
		t.Fatalf("header-only: %v, %v", tbl, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := testTable(t)
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(tbl.Name(), tbl.Schema(), strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), tbl.NumRows())
	}
	for r := 0; r < tbl.NumRows(); r++ {
		a, b := tbl.Row(r), back.Row(r)
		for c := range a {
			if !a[c].Equal(b[c]) {
				t.Fatalf("row %d col %d: %v vs %v", r, c, a[c], b[c])
			}
		}
	}
}

// Property: WriteCSV → ReadCSV is the identity for arbitrary values,
// including floats needing full precision and strings with commas/quotes.
func TestCSVRoundTripProperty(t *testing.T) {
	s := csvSchema()
	words := []string{"a", "b,with,commas", `c"quoted"`, "d\nnewline", ""}
	f := func(ints []int64, picks []uint8) bool {
		n := len(ints)
		if len(picks) < n {
			n = len(picks)
		}
		b := NewBuilder("rt", s, n)
		for i := 0; i < n; i++ {
			b.MustAppendRow(
				IntValue(ints[i]),
				FloatValue(float64(ints[i])/7),
				StringValue(words[int(picks[i])%len(words)]),
			)
		}
		tbl := b.Build()
		var sb strings.Builder
		if err := tbl.WriteCSV(&sb); err != nil {
			return false
		}
		back, err := ReadCSV("rt", s, strings.NewReader(sb.String()))
		if err != nil || back.NumRows() != n {
			return false
		}
		for r := 0; r < n; r++ {
			a, bb := tbl.Row(r), back.Row(r)
			for c := range a {
				if !a[c].Equal(bb[c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
