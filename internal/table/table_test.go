package table

import (
	"testing"
	"testing/quick"
)

func TestTypeStringAndWidth(t *testing.T) {
	if Int64.String() != "int64" || Float64.String() != "float64" || String.String() != "string" {
		t.Fatal("type names wrong")
	}
	if Int64.Width() != 8 || Float64.Width() != 8 || String.Width() != 4 {
		t.Fatal("type widths wrong")
	}
	if Type(42).String() == "" {
		t.Fatal("unknown type should render")
	}
}

func TestValueConstructorsAndEqual(t *testing.T) {
	if !IntValue(3).Equal(IntValue(3)) || IntValue(3).Equal(IntValue(4)) {
		t.Fatal("int equality broken")
	}
	if !FloatValue(1.5).Equal(FloatValue(1.5)) || FloatValue(1.5).Equal(FloatValue(2)) {
		t.Fatal("float equality broken")
	}
	if !StringValue("a").Equal(StringValue("a")) || StringValue("a").Equal(StringValue("b")) {
		t.Fatal("string equality broken")
	}
	if IntValue(1).Equal(FloatValue(1)) {
		t.Fatal("cross-kind values must not be equal")
	}
	if IntValue(7).String() != "7" || StringValue("x").String() != "x" || FloatValue(0.5).String() != "0.5" {
		t.Fatal("value String() broken")
	}
}

func TestSchemaConstruction(t *testing.T) {
	s, err := NewSchema(ColumnDef{"id", Int64}, ColumnDef{"price", Float64}, ColumnDef{"city", String})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumColumns() != 3 {
		t.Fatalf("columns = %d", s.NumColumns())
	}
	if s.ColumnIndex("price") != 1 || s.ColumnIndex("nope") != -1 {
		t.Fatal("ColumnIndex broken")
	}
	if s.Column(2).Name != "city" {
		t.Fatal("Column broken")
	}
	if got := s.RowBytes(); got != 8+8+4 {
		t.Fatalf("RowBytes = %d, want 20", got)
	}
	if s.String() != "(id int64, price float64, city string)" {
		t.Fatalf("String = %q", s.String())
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "id" {
		t.Fatal("Columns must return a copy")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(ColumnDef{"", Int64}); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := NewSchema(ColumnDef{"a", Int64}, ColumnDef{"a", Float64}); err == nil {
		t.Fatal("duplicate name should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on error")
		}
	}()
	MustSchema(ColumnDef{"", Int64})
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(ColumnDef{"x", Int64})
	b := MustSchema(ColumnDef{"x", Int64})
	c := MustSchema(ColumnDef{"x", Float64})
	d := MustSchema(ColumnDef{"x", Int64}, ColumnDef{"y", Int64})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("schema equality broken")
	}
}

func TestStringDataDictionary(t *testing.T) {
	d := NewStringData()
	for _, s := range []string{"red", "green", "red", "blue", "green", "red"} {
		d.Append(s)
	}
	if d.Len() != 6 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.CardinalityOfDict() != 3 {
		t.Fatalf("dict cardinality = %d, want 3", d.CardinalityOfDict())
	}
	if d.Code("red") != 0 || d.Code("blue") != 2 || d.Code("absent") != -1 {
		t.Fatalf("codes: red=%d blue=%d absent=%d", d.Code("red"), d.Code("blue"), d.Code("absent"))
	}
	if v := d.ValueAt(3); v.S != "blue" {
		t.Fatalf("ValueAt(3) = %v", v)
	}
	if d.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestNewColumnData(t *testing.T) {
	for _, typ := range []Type{Int64, Float64, String} {
		c := NewColumnData(typ, 4)
		if c.Type() != typ || c.Len() != 0 {
			t.Fatalf("NewColumnData(%s) wrong", typ)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown type should panic")
		}
	}()
	NewColumnData(Type(9), 0)
}

func testTable(t *testing.T) *Table {
	t.Helper()
	s := MustSchema(ColumnDef{"id", Int64}, ColumnDef{"price", Float64}, ColumnDef{"city", String})
	b := NewBuilder("orders", s, 4)
	b.MustAppendRow(IntValue(1), FloatValue(9.5), StringValue("zurich"))
	b.MustAppendRow(IntValue(2), FloatValue(3.25), StringValue("basel"))
	b.MustAppendRow(IntValue(3), FloatValue(7.0), StringValue("zurich"))
	return b.Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	tbl := testTable(t)
	if tbl.Name() != "orders" || tbl.NumRows() != 3 {
		t.Fatalf("name/rows = %s/%d", tbl.Name(), tbl.NumRows())
	}
	ids, err := tbl.Int64Column("id")
	if err != nil || len(ids) != 3 || ids[2] != 3 {
		t.Fatalf("Int64Column: %v %v", ids, err)
	}
	prices, err := tbl.Float64Column("price")
	if err != nil || prices[1] != 3.25 {
		t.Fatalf("Float64Column: %v %v", prices, err)
	}
	cities, err := tbl.StringColumn("city")
	if err != nil || cities.Code("zurich") != 0 {
		t.Fatalf("StringColumn: %v %v", cities, err)
	}
	row := tbl.Row(1)
	if !row[0].Equal(IntValue(2)) || !row[2].Equal(StringValue("basel")) {
		t.Fatalf("Row(1) = %v", row)
	}
	if tbl.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
	if tbl.Column(0).Type() != Int64 {
		t.Fatal("Column broken")
	}
}

func TestColumnAccessErrors(t *testing.T) {
	tbl := testTable(t)
	if _, err := tbl.Int64Column("price"); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := tbl.Float64Column("id"); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := tbl.StringColumn("id"); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := tbl.ColumnByName("ghost"); err == nil {
		t.Fatal("missing column should fail")
	}
}

func TestAppendRowErrors(t *testing.T) {
	s := MustSchema(ColumnDef{"id", Int64})
	b := NewBuilder("t", s, 0)
	if err := b.AppendRow(); err == nil {
		t.Fatal("wrong arity should fail")
	}
	if err := b.AppendRow(FloatValue(1)); err == nil {
		t.Fatal("wrong kind should fail")
	}
	if err := b.AppendRow(IntValue(1)); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	// A failed AppendRow must not partially append.
	if err := b.AppendRow(FloatValue(2)); err == nil {
		t.Fatal("wrong kind should fail")
	}
	tbl := b.Build()
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1 (failed appends must not leak)", tbl.NumRows())
	}
}

func TestFromColumnsErrors(t *testing.T) {
	s := MustSchema(ColumnDef{"a", Int64}, ColumnDef{"b", Int64})
	if _, err := FromColumns("t", s, []ColumnData{&Int64Data{}}); err == nil {
		t.Fatal("column count mismatch should fail")
	}
	if _, err := FromColumns("t", s, []ColumnData{&Int64Data{}, &Float64Data{}}); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := FromColumns("t", s, []ColumnData{
		&Int64Data{Values: []int64{1, 2}},
		&Int64Data{Values: []int64{1}},
	}); err == nil {
		t.Fatal("ragged columns should fail")
	}
	empty, err := FromColumns("t", s, []ColumnData{&Int64Data{}, &Int64Data{}})
	if err != nil || empty.NumRows() != 0 {
		t.Fatalf("empty table: %v %v", empty, err)
	}
}

// Property: building a table row-wise and reading it back yields the same
// values in the same order.
func TestRoundTripProperty(t *testing.T) {
	s := MustSchema(ColumnDef{"i", Int64}, ColumnDef{"f", Float64}, ColumnDef{"s", String})
	words := []string{"a", "b", "c", "d"}
	f := func(ints []int64, pick []uint8) bool {
		n := len(ints)
		if len(pick) < n {
			n = len(pick)
		}
		b := NewBuilder("rt", s, n)
		for r := 0; r < n; r++ {
			b.MustAppendRow(IntValue(ints[r]), FloatValue(float64(ints[r])/3), StringValue(words[int(pick[r])%len(words)]))
		}
		tbl := b.Build()
		if tbl.NumRows() != n {
			return false
		}
		for r := 0; r < n; r++ {
			row := tbl.Row(r)
			if row[0].I != ints[r] || row[1].F != float64(ints[r])/3 || row[2].S != words[int(pick[r])%len(words)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: dictionary encoding preserves value identity — equal strings get
// equal codes and unequal strings get unequal codes.
func TestDictionaryCodesProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		d := NewStringData()
		strs := make([]string, len(raw))
		for i, r := range raw {
			strs[i] = string(rune('a' + r%16))
			d.Append(strs[i])
		}
		for i := range strs {
			for j := range strs {
				ci, cj := d.Codes[i], d.Codes[j]
				if (strs[i] == strs[j]) != (ci == cj) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
