package table

import "fmt"

// ColumnDef names and types one column of a schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema struct {
	cols  []ColumnDef
	index map[string]int
}

// NewSchema builds a schema from column definitions; duplicate or empty
// column names are an error.
func NewSchema(cols ...ColumnDef) (*Schema, error) {
	s := &Schema{cols: append([]ColumnDef(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known schemas.
func MustSchema(cols ...ColumnDef) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column definition.
func (s *Schema) Column(i int) ColumnDef { return s.cols[i] }

// Columns returns a copy of the definitions.
func (s *Schema) Columns() []ColumnDef { return append([]ColumnDef(nil), s.cols...) }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// RowBytes returns the fixed row width in bytes when tuples of this schema
// are stored row-wise (NSM); strings count as their 4-byte dictionary code.
func (s *Schema) RowBytes() int64 {
	var w int64
	for _, c := range s.cols {
		w += c.Type.Width()
	}
	return w
}

// Equal reports whether two schemas have identical column names and types in
// the same order.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Type.String()
	}
	return out + ")"
}
