package sched

import (
	"math"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hwstar/internal/hw"
)

func fixedTask(cycles float64) Task {
	return Task{Socket: -1, Run: func(w *Worker) { w.AdvanceCycles(cycles) }}
}

func TestNewValidation(t *testing.T) {
	m := hw.Server2S()
	if _, err := New(m, Options{Workers: -1}); err == nil {
		t.Fatal("negative workers should fail")
	}
	if _, err := New(m, Options{Workers: 1000}); err == nil {
		t.Fatal("too many workers should fail")
	}
	s, err := New(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.opts.Workers != m.TotalCores() {
		t.Fatalf("default workers = %d, want %d", s.opts.Workers, m.TotalCores())
	}
	bad := hw.Server2S()
	bad.MLP = 0
	if _, err := New(bad, Options{}); err == nil {
		t.Fatal("invalid machine should fail")
	}
}

func TestEveryTaskRunsExactlyOnce(t *testing.T) {
	m := hw.Server2S()
	s, _ := New(m, Options{Workers: 7, Stealing: true})
	const n = 100
	runs := make([]int32, n)
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{Socket: -1, Run: func(w *Worker) {
			atomic.AddInt32(&runs[i], 1)
			w.AdvanceCycles(10)
		}}
	}
	res := s.Run(tasks)
	if res.TasksRun != n {
		t.Fatalf("TasksRun = %d, want %d", res.TasksRun, n)
	}
	for i, r := range runs {
		if r != 1 {
			t.Fatalf("task %d ran %d times", i, r)
		}
	}
}

func TestMakespanBounds(t *testing.T) {
	m := hw.NUMA4S()
	s, _ := New(m, Options{Workers: 8, Stealing: true})
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = fixedTask(100)
	}
	res := s.Run(tasks)
	if math.Abs(res.TotalCycles-6400) > 1e-9 {
		t.Fatalf("total = %f, want 6400", res.TotalCycles)
	}
	// 64 equal tasks on 8 workers: perfect balance.
	if math.Abs(res.MakespanCycles-800) > 1e-9 {
		t.Fatalf("makespan = %f, want 800", res.MakespanCycles)
	}
	if sp := res.Speedup(); math.Abs(sp-8) > 1e-9 {
		t.Fatalf("speedup = %f, want 8", sp)
	}
	if res.Imbalance() != 0 {
		t.Fatalf("imbalance = %f, want 0", res.Imbalance())
	}
}

func TestSkewedTasksCauseImbalance(t *testing.T) {
	m := hw.Server2S()
	s, _ := New(m, Options{Workers: 4, Stealing: true})
	// One giant task and many small ones: makespan is bounded below by the
	// giant task.
	tasks := []Task{fixedTask(1000)}
	for i := 0; i < 12; i++ {
		tasks = append(tasks, fixedTask(10))
	}
	res := s.Run(tasks)
	if res.MakespanCycles < 1000 {
		t.Fatalf("makespan %f below the critical path 1000", res.MakespanCycles)
	}
	if res.Imbalance() <= 0 {
		t.Fatal("skewed run should report imbalance")
	}
}

func TestStealingDrainsRemoteQueues(t *testing.T) {
	m := hw.Server2S() // 2 sockets × 8 cores
	// All tasks pinned to socket 0; workers span both sockets.
	mk := func(stealing bool) Result {
		s, _ := New(m, Options{Workers: 16, Stealing: stealing})
		tasks := make([]Task, 64)
		for i := range tasks {
			tasks[i] = fixedTask(100)
			tasks[i].Socket = 0
		}
		return s.Run(tasks)
	}
	with := mk(true)
	without := mk(false)
	if with.Steals == 0 {
		t.Fatal("expected steals when all work is on one socket")
	}
	if without.Steals != 0 {
		t.Fatal("stealing disabled must not steal")
	}
	// Stealing lets 16 workers share the load: roughly halves the makespan.
	if with.MakespanCycles >= without.MakespanCycles {
		t.Fatalf("stealing makespan %f should beat no-stealing %f", with.MakespanCycles, without.MakespanCycles)
	}
	if without.TasksRun != 64 || with.TasksRun != 64 {
		t.Fatal("all tasks must run either way")
	}
}

func TestChargeUsesSocketOccupancy(t *testing.T) {
	m := hw.Server2S()
	memWork := hw.Work{SeqReadBytes: 1 << 20}
	run := func(workers int) Result {
		s, _ := New(m, Options{Workers: workers})
		tasks := make([]Task, workers)
		for i := range tasks {
			tasks[i] = Task{Socket: -1, Run: func(w *Worker) { w.Charge(memWork) }}
		}
		return s.Run(tasks)
	}
	r1 := run(1)
	r8 := run(8)
	// Eight co-located memory-bound tasks contend for socket bandwidth: the
	// parallel makespan cannot beat serial by 8×.
	if r8.MakespanCycles <= r1.MakespanCycles {
		t.Fatalf("8-worker makespan %f should exceed 1-worker %f per task (bandwidth wall)",
			r8.MakespanCycles, r1.MakespanCycles)
	}
}

func TestInterferenceSlowsRun(t *testing.T) {
	m := hw.Laptop()
	work := hw.Work{SeqReadBytes: 1 << 20}
	run := func(inter float64) float64 {
		s, _ := New(m, Options{Workers: 2, Interference: inter})
		tasks := []Task{
			{Socket: -1, Run: func(w *Worker) { w.Charge(work) }},
			{Socket: -1, Run: func(w *Worker) { w.Charge(work) }},
		}
		return s.Run(tasks).MakespanCycles
	}
	if noisy, quiet := run(3), run(1); noisy <= quiet {
		t.Fatalf("interference should slow the run: %f <= %f", noisy, quiet)
	}
}

func TestWorkerAccessors(t *testing.T) {
	m := hw.Laptop()
	s, _ := New(m, Options{Workers: 2})
	var sawMachine, sawCtx bool
	tasks := []Task{{Socket: -1, Run: func(w *Worker) {
		sawMachine = w.Machine() == m
		sawCtx = w.Context().ActiveCoresOnSocket == 2
		w.AdvanceCycles(1)
		if w.Clock() != 1 {
			t.Errorf("clock = %f", w.Clock())
		}
	}}}
	s.Run(tasks)
	if !sawMachine || !sawCtx {
		t.Fatal("worker accessors wrong")
	}
}

func TestTaskCannotRewindClock(t *testing.T) {
	m := hw.Laptop()
	s, _ := New(m, Options{Workers: 1})
	tasks := []Task{
		fixedTask(100),
		{Socket: -1, Run: func(w *Worker) { w.AdvanceCycles(-500) }},
		fixedTask(50),
	}
	res := s.Run(tasks)
	if res.MakespanCycles < 150 {
		t.Fatalf("negative advance must not rewind: makespan %f", res.MakespanCycles)
	}
}

func TestMorsels(t *testing.T) {
	var covered []int
	tasks := Morsels(10, 3, "scan", func(start, end int, w *Worker) {
		for i := start; i < end; i++ {
			covered = append(covered, i)
		}
	})
	if len(tasks) != 4 {
		t.Fatalf("tasks = %d, want 4", len(tasks))
	}
	m := hw.Laptop()
	s, _ := New(m, Options{Workers: 1})
	s.Run(tasks)
	sort.Ints(covered)
	for i, v := range covered {
		if v != i {
			t.Fatalf("coverage hole: %v", covered)
		}
	}
	if len(covered) != 10 {
		t.Fatalf("covered %d items, want 10", len(covered))
	}
}

func TestMorselsAligned(t *testing.T) {
	// Size 1000 with align 1024 snaps up to one block per morsel.
	tasks := MorselsAligned(4096, 1000, 1024, "vec", func(s, e int, w *Worker) {})
	if len(tasks) != 4 {
		t.Fatalf("snapped-up tasks = %d, want 4", len(tasks))
	}
	// Size 1500 snaps to 2048; boundaries must all be multiples of 1024
	// except the final end.
	m := hw.Laptop()
	s, _ := New(m, Options{Workers: 1})
	got := 0
	run := MorselsAligned(5000, 1500, 1024, "vec2", func(start, end int, w *Worker) {
		if start%1024 != 0 {
			t.Errorf("morsel start %d not block-aligned", start)
		}
		if end != 5000 && end%1024 != 0 {
			t.Errorf("morsel end %d not block-aligned", end)
		}
		got += end - start
	})
	s.Run(run)
	if got != 5000 {
		t.Fatalf("covered %d rows, want 5000", got)
	}
	// Zero align degenerates to plain Morsels.
	if n := len(MorselsAligned(10, 3, 0, "x", func(s, e int, w *Worker) {})); n != 4 {
		t.Fatalf("align 0 tasks = %d, want 4", n)
	}
}

func TestMorselsDefaultSize(t *testing.T) {
	tasks := Morsels(100, 0, "x", func(s, e int, w *Worker) {})
	if len(tasks) != 1 {
		t.Fatalf("default morsel size should cover 100 items in one task, got %d", len(tasks))
	}
}

func TestPinRoundRobin(t *testing.T) {
	m := hw.NUMA4S()
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = fixedTask(1)
	}
	PinRoundRobin(tasks, m)
	for i, task := range tasks {
		if task.Socket != i%4 {
			t.Fatalf("task %d pinned to %d", i, task.Socket)
		}
	}
}

func TestEmptyTaskList(t *testing.T) {
	m := hw.Laptop()
	s, _ := New(m, Options{Workers: 2})
	res := s.Run(nil)
	if res.TasksRun != 0 || res.MakespanCycles != 0 {
		t.Fatalf("empty run = %+v", res)
	}
	if res.Speedup() != 0 {
		t.Fatal("empty speedup should be 0")
	}
}

// Property: for any task durations, the greedy schedule satisfies the classic
// list-scheduling bounds: max(duration) <= makespan and
// total/P <= makespan <= total/P + max(duration).
func TestListSchedulingBoundsProperty(t *testing.T) {
	m := hw.NUMA4S()
	f := func(durRaw []uint16, workersRaw uint8) bool {
		if len(durRaw) == 0 {
			return true
		}
		workers := int(workersRaw)%16 + 1
		s, err := New(m, Options{Workers: workers, Stealing: true})
		if err != nil {
			return false
		}
		var total, maxDur float64
		tasks := make([]Task, len(durRaw))
		for i, d := range durRaw {
			dur := float64(d) + 1
			total += dur
			if dur > maxDur {
				maxDur = dur
			}
			tasks[i] = fixedTask(dur)
		}
		res := s.Run(tasks)
		p := float64(workers)
		lower := math.Max(total/p, maxDur)
		upper := total/p + maxDur
		return res.MakespanCycles >= lower-1e-6 && res.MakespanCycles <= upper+1e-6 &&
			math.Abs(res.TotalCycles-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — two runs of the same task set yield identical
// results.
func TestSchedulerDeterminismProperty(t *testing.T) {
	m := hw.Server2S()
	f := func(durRaw []uint8, workersRaw uint8, stealing bool) bool {
		workers := int(workersRaw)%8 + 1
		run := func() Result {
			s, _ := New(m, Options{Workers: workers, Stealing: stealing})
			tasks := make([]Task, len(durRaw))
			for i, d := range durRaw {
				tasks[i] = fixedTask(float64(d) + 1)
				tasks[i].Socket = i % m.Sockets
			}
			return s.Run(tasks)
		}
		a, b := run(), run()
		if a.MakespanCycles != b.MakespanCycles || a.Steals != b.Steals || a.TasksRun != b.TasksRun {
			return false
		}
		for i := range a.PerWorker {
			if a.PerWorker[i] != b.PerWorker[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
