// Package sched implements a morsel-driven, NUMA-aware task scheduler over
// the simulated machine topology. It is the piece that turns "we have P
// cores" into measured parallel behaviour: operators split their input into
// morsels (small tasks), each task executes real Go code and charges its
// hardware work to the simulated core it runs on, and the scheduler's
// list-scheduling simulation produces a deterministic makespan — including
// the load-imbalance and remote-access effects the keynote warns about.
//
// The simulation executes tasks sequentially in virtual-time order (always
// advancing the core with the lowest clock), which makes runs exactly
// reproducible regardless of host parallelism while still modelling a
// parallel machine faithfully: the makespan is that of the same greedy
// schedule on real hardware with the modelled per-task costs.
//
// The scheduler is also the layer that survives partial hardware failure.
// Task panics are always recovered and converted to a typed error wrapping
// errs.ErrWorkerPanic with the stack captured; with Options.IsolatePanics
// the panicking worker is retired and its morsels re-dispatch to healthy
// workers instead of failing the run. Per-worker progress clocks detect
// stragglers (cores running a configurable factor slower than the median),
// retire them, and re-dispatch their remaining claimed morsels. Simulated
// core loss at run start is absorbed the same way. A fault.Injector armed
// via Options.Inject drives all of these deterministically from a seed.
package sched

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
	"hwstar/internal/mem"
	"hwstar/internal/trace"
)

// Worker is a simulated core executing tasks. Tasks receive their worker and
// may charge hardware work against it; the worker's virtual clock advances by
// the priced cycles.
type Worker struct {
	// ID is the global core index; Socket its NUMA node.
	ID     int
	Socket int

	clock        float64
	acct         *hw.Account
	tasks        int
	machine      *hw.Machine
	totalWorkers int

	// skew multiplies every cycle charge (1 for a healthy core, >1 for an
	// injected straggler); claimed holds morsels this worker has taken from
	// a queue but not yet run; retired marks a worker removed from the run
	// after a panic, straggler detection, or core loss.
	skew    float64
	claimed []claimedTask
	retired bool

	// resv is the query's memory reservation (nil = ungoverned).
	resv *mem.Reservation
}

// Mem returns the memory reservation of the query this worker executes. A
// nil reservation grants every charge, so operators call it unconditionally.
func (w *Worker) Mem() *mem.Reservation { return w.resv }

// TotalWorkers returns the number of workers participating in the current
// run — the "P" that contention formulas need.
func (w *Worker) TotalWorkers() int { return w.totalWorkers }

// Charge prices w on the worker's machine under the worker's execution
// context and advances the virtual clock. It returns the cycles charged,
// including any straggler skew on this core.
func (w *Worker) Charge(work hw.Work) float64 {
	cycles := w.acct.Charge(work)
	if w.skew > 1 {
		cycles *= w.skew
	}
	w.clock += cycles
	return cycles
}

// AdvanceCycles adds raw cycles to the worker's clock (for costs computed
// outside the Work vocabulary, e.g. traced cache simulations). Straggler
// skew applies here too: a slow core is slow for all its work.
func (w *Worker) AdvanceCycles(c float64) {
	if w.skew > 1 {
		c *= w.skew
	}
	w.clock += c
}

// Clock returns the worker's current virtual time in cycles.
func (w *Worker) Clock() float64 { return w.clock }

// Machine returns the machine the worker runs on.
func (w *Worker) Machine() *hw.Machine { return w.machine }

// Context returns the worker's execution context.
func (w *Worker) Context() hw.ExecContext { return w.acct.Context() }

// Task is one unit of schedulable work. Run executes real code; any hardware
// cost it wants modelled must be charged to the worker.
type Task struct {
	// Name labels the task in diagnostics.
	Name string
	// Site is the morsel family name ("clock-scan", "agg-part", ...) used as
	// the fault-injection site key; empty falls back to Name.
	Site string
	// Socket is the preferred NUMA node (-1 for no preference); the
	// scheduler queues the task there and only another socket's worker
	// takes it by stealing.
	Socket int
	// Run executes the task on the given worker.
	Run func(w *Worker)
}

// claimedTask is a queued task plus its re-execution count after panics.
type claimedTask struct {
	t        Task
	attempts int
}

// Options configures a scheduler run.
type Options struct {
	// Workers is the number of simulated cores to use; 0 means all cores of
	// the machine. Workers are assigned to sockets round-robin in blocks
	// (fill socket 0 first), matching how affinity-aware engines place
	// threads.
	Workers int
	// Stealing enables cross-socket work stealing when a worker's own
	// socket queue drains.
	Stealing bool
	// Interference is the external slowdown factor applied to all memory
	// work (see hw.ExecContext); values < 1 are treated as 1.
	Interference float64

	// Inject arms a fault injector on this scheduler's runs: panics and
	// transient errors at morsel boundaries, straggler skew and core loss
	// per worker. Nil injects nothing.
	Inject *fault.Injector

	// Mem is the memory reservation the scheduled query charges its operator
	// state against (hash tables, partition buffers). Nil runs ungoverned:
	// every charge is granted, matching the pre-governor behaviour.
	Mem *mem.Reservation

	// IsolatePanics, when true, turns a task panic into worker retirement:
	// the panicking core is removed from the run and its morsels (the
	// panicked one plus everything it had claimed) re-dispatch to healthy
	// workers. When false a panic fails the run with a typed
	// errs.ErrWorkerPanic error (stack attached) — it never crashes the
	// process either way.
	IsolatePanics bool
	// MaxTaskRetries bounds how many times one morsel may be re-executed
	// after panics before the run fails (default 2). It keeps a
	// deterministically-poisoned morsel from retiring every worker in turn.
	MaxTaskRetries int

	// StragglerThreshold enables straggler detection when > 0: after each
	// completed morsel, a worker whose mean per-morsel cost exceeds
	// threshold × the median of the other active workers is retired and its
	// remaining claimed morsels re-dispatch. Typical values are 2–4.
	StragglerThreshold float64
	// BlockSize is how many morsels a worker claims per dispatch (default
	// 1). Claiming blocks models real morsel-batching — and is what gives a
	// straggler morsels to hold hostage, which re-dispatch then rescues.
	BlockSize int
}

// Result summarizes a scheduler run.
type Result struct {
	// MakespanCycles is the virtual time at which the last worker finished
	// — the parallel runtime of the task set.
	MakespanCycles float64
	// TotalCycles is the sum of all per-worker busy cycles (the serial
	// work).
	TotalCycles float64
	// PerWorker holds each worker's busy cycles.
	PerWorker []float64
	// TasksRun is the number of executed tasks; Steals counts tasks
	// executed on a non-preferred socket.
	TasksRun int
	Steals   int
	// Workers is the number of simulated cores used.
	Workers int
	// FaultStats reports what the run survived.
	FaultStats
}

// FaultStats counts the fault handling a schedule performed. Operators that
// run multiple phases (join, aggregation) sum these across phases.
type FaultStats struct {
	// Panics is the number of recovered task panics; TaskRetries the
	// morsel re-executions they caused.
	Panics      int
	TaskRetries int
	// Redispatched counts morsels moved from a retired or lost worker to a
	// healthy one.
	Redispatched int
	// StragglersRetired and CoresLost count workers removed mid-run and at
	// run start respectively.
	StragglersRetired int
	CoresLost         int
}

// Add accumulates other into s.
func (s *FaultStats) Add(other FaultStats) {
	s.Panics += other.Panics
	s.TaskRetries += other.TaskRetries
	s.Redispatched += other.Redispatched
	s.StragglersRetired += other.StragglersRetired
	s.CoresLost += other.CoresLost
}

// Speedup returns TotalCycles / MakespanCycles — the effective parallelism
// achieved.
func (r Result) Speedup() float64 {
	if r.MakespanCycles == 0 {
		return 0
	}
	return r.TotalCycles / r.MakespanCycles
}

// Imbalance returns (max-mean)/mean of per-worker busy cycles, 0 for a
// perfectly balanced run.
func (r Result) Imbalance() float64 {
	if len(r.PerWorker) == 0 {
		return 0
	}
	var sum, maxC float64
	for _, c := range r.PerWorker {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	mean := sum / float64(len(r.PerWorker))
	if mean == 0 {
		return 0
	}
	return (maxC - mean) / mean
}

// Scheduler runs task sets on a simulated machine.
type Scheduler struct {
	machine *hw.Machine
	opts    Options
}

// Workers returns the number of simulated cores the scheduler uses.
func (s *Scheduler) Workers() int { return s.opts.Workers }

// Mem returns the memory reservation scheduled queries charge against (nil =
// ungoverned).
func (s *Scheduler) Mem() *mem.Reservation { return s.opts.Mem }

// Machine returns the machine the scheduler simulates.
func (s *Scheduler) Machine() *hw.Machine { return s.machine }

// New returns a scheduler for machine m with the given options.
func New(m *hw.Machine, opts Options) (*Scheduler, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("sched: negative worker count %d: %w", opts.Workers, errs.ErrWorkersOutOfRange)
	}
	if opts.Workers == 0 {
		opts.Workers = m.TotalCores()
	}
	if opts.Workers > m.TotalCores() {
		return nil, fmt.Errorf("sched: %d workers exceed machine's %d cores: %w", opts.Workers, m.TotalCores(), errs.ErrWorkersOutOfRange)
	}
	if opts.Interference < 1 {
		opts.Interference = 1
	}
	return &Scheduler{machine: m, opts: opts}, nil
}

// workerHeap orders workers by virtual clock (ties by ID for determinism).
type workerHeap []*Worker

func (h workerHeap) Len() int { return len(h) }
func (h workerHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].ID < h[j].ID
}
func (h workerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)   { *h = append(*h, x.(*Worker)) }
func (h *workerHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}

// Run executes all tasks and returns the schedule's result. Tasks with a
// preferred socket go to that socket's queue; unpinned tasks are spread
// round-robin. Execution order is deterministic. A task panic that the run
// cannot absorb re-panics here (there is no error return to carry it).
func (s *Scheduler) Run(tasks []Task) Result {
	//hwlint:ignore ctxfirst Run is the documented no-context bridge; callers that can cancel use RunContext
	res, err := s.RunContext(context.Background(), tasks)
	if err != nil && errors.Is(err, errs.ErrWorkerPanic) {
		panic(err)
	}
	return res
}

// RunContext is Run with cooperative cancellation: the context is checked at
// every morsel boundary (before each task dispatch), so an expired deadline
// or a cancelled client stops the schedule between tasks rather than after
// the whole set. A morsel in flight always completes — tasks are never
// interrupted mid-execution, matching how morsel-driven engines implement
// query cancellation. On cancellation the partial schedule's Result is
// returned together with the context's error (wrapped, errors.Is-compatible).
//
// Task panics are recovered, never propagated: without IsolatePanics the run
// fails with an error wrapping errs.ErrWorkerPanic carrying the panic value
// and captured stack; with it the panicking worker retires and its morsels
// re-dispatch (see Options). Injected transient failures fail the run with
// an errs.ErrTransient-wrapping error — retrying is the caller's policy.
func (s *Scheduler) RunContext(ctx context.Context, tasks []Task) (Result, error) {
	m := s.machine
	nw := s.opts.Workers
	inj := s.opts.Inject
	// sp is the trace span this schedule reports into (nil — a no-op — when
	// the context carries none): fault events are annotated as they happen,
	// and per-worker busy cycles are emitted as child spans at the end.
	sp := trace.FromContext(ctx)
	blockSize := s.opts.BlockSize
	if blockSize <= 0 {
		blockSize = 1
	}
	maxRetries := s.opts.MaxTaskRetries
	if maxRetries <= 0 {
		maxRetries = 2
	}

	// Place workers on sockets: fill sockets in order, as a pinned engine
	// would.
	workers := make([]*Worker, nw)
	perSocket := make([]int, m.Sockets)
	for i := 0; i < nw; i++ {
		socket := i / m.CoresPerSocket
		if socket >= m.Sockets {
			socket = m.Sockets - 1
		}
		perSocket[socket]++
		workers[i] = &Worker{ID: i, Socket: socket, machine: m, totalWorkers: nw, skew: 1, resv: s.opts.Mem}
	}
	for _, w := range workers {
		ctx := hw.ExecContext{
			ActiveCoresOnSocket: perSocket[w.Socket],
			InterferenceFactor:  s.opts.Interference,
		}
		w.acct = hw.NewAccount(m, ctx)
	}

	res := Result{Workers: nw}

	// Arm injected worker-level faults: straggler skew, then core loss. The
	// run never loses its last surviving worker.
	liveOnSocket := make([]int, m.Sockets)
	alive := nw
	for _, w := range workers {
		liveOnSocket[w.Socket]++
		if k := inj.WorkerSkew(w.ID); k > 1 {
			w.skew = k
		}
	}
	for _, w := range workers {
		if alive > 1 && inj.LoseCore(w.ID) {
			w.retired = true
			liveOnSocket[w.Socket]--
			alive--
			res.CoresLost++
			sp.Annotate("core %d lost at run start", w.ID)
		}
	}

	// Socket-local FIFO queues.
	queues := make([][]claimedTask, m.Sockets)
	rr := 0
	for _, t := range tasks {
		sock := t.Socket
		if sock < 0 || sock >= m.Sockets {
			sock = rr % m.Sockets
			rr++
		}
		queues[sock] = append(queues[sock], claimedTask{t: t})
	}
	heads := make([]int, m.Sockets)
	remaining := func(sock int) int { return len(queues[sock]) - heads[sock] }
	totalQueued := func() int {
		n := 0
		for sock := range queues {
			n += remaining(sock)
		}
		return n
	}

	// redispatch returns morsels to the queues of sockets that still have
	// live workers, round-robin, so a retired worker's claims are never
	// stranded.
	redisRR := 0
	redispatch := func(cts []claimedTask) {
		for _, ct := range cts {
			sock := -1
			for probe := 0; probe < m.Sockets; probe++ {
				cand := (redisRR + probe) % m.Sockets
				if liveOnSocket[cand] > 0 {
					sock = cand
					redisRR = cand + 1
					break
				}
			}
			if sock < 0 {
				sock = ct.t.Socket // no live workers anywhere; the loop will abort
				if sock < 0 || sock >= m.Sockets {
					sock = 0
				}
			}
			queues[sock] = append(queues[sock], ct)
			res.Redispatched++
		}
	}
	// rebalance moves tasks queued on sockets that lost all their workers to
	// live sockets. Only needed without stealing — a stealing worker reaches
	// every queue anyway.
	rebalance := func() {
		if s.opts.Stealing {
			return
		}
		for sock := range queues {
			if liveOnSocket[sock] > 0 || remaining(sock) == 0 {
				continue
			}
			stranded := queues[sock][heads[sock]:]
			queues[sock] = queues[sock][:heads[sock]]
			redispatch(stranded)
		}
	}
	rebalance()

	h := workerHeap{}
	for _, w := range workers {
		if !w.retired {
			h = append(h, w)
		}
	}
	heap.Init(&h)
	var parked []*Worker

	// unpark returns idle workers to the heap once re-dispatched work exists
	// for them.
	unpark := func() {
		keep := parked[:0]
		for _, w := range parked {
			if remaining(w.Socket) > 0 || (s.opts.Stealing && totalQueued() > 0) {
				heap.Push(&h, w)
			} else {
				keep = append(keep, w)
			}
		}
		parked = keep
	}
	// retire removes a worker mid-run and rescues its unfinished morsels.
	retire := func(w *Worker, rescued []claimedTask) {
		w.retired = true
		w.claimed = nil
		liveOnSocket[w.Socket]--
		alive--
		redispatch(rescued)
		rebalance()
		unpark()
	}
	// medianPeerCost is the median per-morsel cost of the other live workers
	// that have completed at least one morsel — the reference a straggler is
	// measured against.
	medianPeerCost := func(self *Worker) float64 {
		var costs []float64
		for _, w := range workers {
			if w == self || w.retired || w.tasks == 0 {
				continue
			}
			costs = append(costs, w.clock/float64(w.tasks))
		}
		if len(costs) == 0 {
			return 0
		}
		sort.Float64s(costs)
		return costs[len(costs)/2]
	}

	pendingTasks := len(tasks)
	var runErr error

	for pendingTasks > 0 {
		if err := ctx.Err(); err != nil {
			runErr = fmt.Errorf("sched: run aborted after %d of %d tasks: %w", res.TasksRun, len(tasks), err)
			break
		}
		if h.Len() == 0 {
			// Everyone is parked or retired. Parked workers wake only when
			// work reappears; if none can, the tasks are unreachable.
			unpark()
			if h.Len() == 0 {
				runErr = fmt.Errorf("sched: %d morsels stranded with no live worker: %w", pendingTasks, errs.ErrWorkerPanic)
				break
			}
			continue
		}
		w := heap.Pop(&h).(*Worker)
		if len(w.claimed) == 0 {
			// Claim a block from the local queue; otherwise steal from the
			// fullest queue.
			sock := w.Socket
			if remaining(sock) == 0 {
				if !s.opts.Stealing {
					parked = append(parked, w)
					continue
				}
				best, bestLeft := -1, 0
				for qs := range queues {
					if left := remaining(qs); left > bestLeft {
						best, bestLeft = qs, left
					}
				}
				if best == -1 {
					parked = append(parked, w)
					continue
				}
				sock = best
			}
			n := blockSize
			if left := remaining(sock); n > left {
				n = left
			}
			for i := 0; i < n; i++ {
				w.claimed = append(w.claimed, queues[sock][heads[sock]])
				heads[sock]++
				if sock != w.Socket {
					res.Steals++
				}
			}
		}
		ct := w.claimed[0]
		w.claimed = w.claimed[1:]
		site := ct.t.Site
		if site == "" {
			site = ct.t.Name
		}

		// Injected transient failure: the morsel boundary is the failure
		// point, so nothing partial happened — fail the run and let the
		// caller's retry policy decide.
		if err := inj.TaskError(site, w.ID); err != nil {
			sp.Annotate("transient fault in %s on worker %d", ct.t.Name, w.ID)
			runErr = fmt.Errorf("sched: task %s failed: %w", ct.t.Name, err)
			break
		}

		before := w.clock
		if pval, stack := runTask(ct.t, w, inj, site); pval != nil {
			res.Panics++
			if !s.opts.IsolatePanics {
				sp.Annotate("panic on worker %d in %s (run failed)", w.ID, ct.t.Name)
				runErr = fmt.Errorf("sched: worker %d panicked in task %s: %v: %w\n%s", w.ID, ct.t.Name, pval, errs.ErrWorkerPanic, stack)
				break
			}
			ct.attempts++
			if ct.attempts > maxRetries {
				sp.Annotate("task %s panicked on %d workers, giving up", ct.t.Name, ct.attempts)
				runErr = fmt.Errorf("sched: task %s panicked on %d workers, giving up (last: worker %d, %v): %w\n%s",
					ct.t.Name, ct.attempts, w.ID, pval, errs.ErrWorkerPanic, stack)
				break
			}
			res.TaskRetries++
			sp.Annotate("worker %d retired after panic in %s; %d morsels re-dispatched", w.ID, ct.t.Name, 1+len(w.claimed))
			// The core is poisoned: retire it and move the panicked morsel
			// plus everything it still held to healthy workers. Cycles spent
			// before the panic stay on its clock — wasted work is real work.
			retire(w, append([]claimedTask{ct}, w.claimed...))
			continue
		}
		if w.clock < before {
			// Defensive: tasks must not rewind time.
			w.clock = before
		}
		w.tasks++
		res.TasksRun++
		pendingTasks--

		// Straggler detection: a worker paying far more per morsel than its
		// peers is retired while there is still work to protect, and its
		// claimed block re-dispatches.
		if t := s.opts.StragglerThreshold; t > 0 && pendingTasks > 0 && alive > 1 {
			if med := medianPeerCost(w); med > 0 && w.clock/float64(w.tasks) > t*med {
				res.StragglersRetired++
				sp.Annotate("worker %d retired as straggler (%.1fx median peer cost); %d morsels re-dispatched",
					w.ID, w.clock/float64(w.tasks)/med, len(w.claimed))
				retire(w, w.claimed)
				continue
			}
		}
		heap.Push(&h, w)
	}

	res.PerWorker = make([]float64, nw)
	for i, w := range workers {
		res.PerWorker[i] = w.clock
		res.TotalCycles += w.clock
		if w.clock > res.MakespanCycles {
			res.MakespanCycles = w.clock
		}
	}
	if sp != nil {
		// Per-worker morsel spans: each worker's busy cycles and morsel
		// count, with retirement visible, so a span tree attributes the
		// schedule's cost core by core.
		for _, w := range workers {
			if w.tasks == 0 && w.clock == 0 {
				continue
			}
			ws := sp.Child("worker")
			ws.AddCycles(w.clock)
			ws.SetAttr("id", fmt.Sprintf("%d", w.ID))
			ws.SetAttr("morsels", fmt.Sprintf("%d", w.tasks))
			if w.retired {
				ws.SetAttr("retired", "true")
			}
			ws.End()
		}
		sp.SetAttr("steals", fmt.Sprintf("%d", res.Steals))
	}
	return res, runErr
}

// runTask executes one task with panic isolation: a panic (injected or real)
// is recovered and returned with the captured stack instead of unwinding
// into the scheduler. Injected panics fire before the body, so a re-executed
// morsel never double-applies effects.
func runTask(t Task, w *Worker, inj *fault.Injector, site string) (pval any, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			pval = r
			stack = debug.Stack()
		}
	}()
	if inj.ShouldPanic(site, w.ID) {
		panic(fmt.Sprintf("fault: injected panic at %s", site))
	}
	t.Run(w)
	return nil, nil
}

// Morsels splits n items into tasks of at most morselSize items each,
// calling fn(start, end, worker) for each morsel. Morsels are unpinned;
// pass them through PinRoundRobin to spread them over sockets explicitly.
func Morsels(n, morselSize int, name string, fn func(start, end int, w *Worker)) []Task {
	if morselSize <= 0 {
		morselSize = 1 << 14
	}
	var tasks []Task
	for start := 0; start < n; start += morselSize {
		end := start + morselSize
		if end > n {
			end = n
		}
		s, e := start, end
		tasks = append(tasks, Task{
			Name:   fmt.Sprintf("%s[%d:%d]", name, s, e),
			Site:   name,
			Socket: -1,
			Run:    func(w *Worker) { fn(s, e, w) },
		})
	}
	return tasks
}

// MorselsAligned is Morsels with the morsel size snapped to a multiple of
// align (at least one align unit): the vectorized scan path hands out
// morsels in whole compression blocks so no block is ever split across
// workers. A non-positive align degenerates to Morsels.
func MorselsAligned(n, morselSize, align int, name string, fn func(start, end int, w *Worker)) []Task {
	if align > 0 {
		if morselSize < align {
			morselSize = align
		} else if rem := morselSize % align; rem != 0 {
			morselSize += align - rem
		}
	}
	return Morsels(n, morselSize, name, fn)
}

// PinRoundRobin assigns preferred sockets to tasks round-robin over the
// machine's sockets, modelling NUMA-partitioned input.
func PinRoundRobin(tasks []Task, m *hw.Machine) []Task {
	for i := range tasks {
		tasks[i].Socket = i % m.Sockets
	}
	return tasks
}
