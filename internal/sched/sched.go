// Package sched implements a morsel-driven, NUMA-aware task scheduler over
// the simulated machine topology. It is the piece that turns "we have P
// cores" into measured parallel behaviour: operators split their input into
// morsels (small tasks), each task executes real Go code and charges its
// hardware work to the simulated core it runs on, and the scheduler's
// list-scheduling simulation produces a deterministic makespan — including
// the load-imbalance and remote-access effects the keynote warns about.
//
// The simulation executes tasks sequentially in virtual-time order (always
// advancing the core with the lowest clock), which makes runs exactly
// reproducible regardless of host parallelism while still modelling a
// parallel machine faithfully: the makespan is that of the same greedy
// schedule on real hardware with the modelled per-task costs.
package sched

import (
	"container/heap"
	"context"
	"fmt"

	"hwstar/internal/errs"
	"hwstar/internal/hw"
)

// Worker is a simulated core executing tasks. Tasks receive their worker and
// may charge hardware work against it; the worker's virtual clock advances by
// the priced cycles.
type Worker struct {
	// ID is the global core index; Socket its NUMA node.
	ID     int
	Socket int

	clock        float64
	acct         *hw.Account
	tasks        int
	machine      *hw.Machine
	totalWorkers int
}

// TotalWorkers returns the number of workers participating in the current
// run — the "P" that contention formulas need.
func (w *Worker) TotalWorkers() int { return w.totalWorkers }

// Charge prices w on the worker's machine under the worker's execution
// context and advances the virtual clock. It returns the cycles charged.
func (w *Worker) Charge(work hw.Work) float64 {
	cycles := w.acct.Charge(work)
	w.clock += cycles
	return cycles
}

// AdvanceCycles adds raw cycles to the worker's clock (for costs computed
// outside the Work vocabulary, e.g. traced cache simulations).
func (w *Worker) AdvanceCycles(c float64) { w.clock += c }

// Clock returns the worker's current virtual time in cycles.
func (w *Worker) Clock() float64 { return w.clock }

// Machine returns the machine the worker runs on.
func (w *Worker) Machine() *hw.Machine { return w.machine }

// Context returns the worker's execution context.
func (w *Worker) Context() hw.ExecContext { return w.acct.Context() }

// Task is one unit of schedulable work. Run executes real code; any hardware
// cost it wants modelled must be charged to the worker.
type Task struct {
	// Name labels the task in diagnostics.
	Name string
	// Socket is the preferred NUMA node (-1 for no preference); the
	// scheduler queues the task there and only another socket's worker
	// takes it by stealing.
	Socket int
	// Run executes the task on the given worker.
	Run func(w *Worker)
}

// Options configures a scheduler run.
type Options struct {
	// Workers is the number of simulated cores to use; 0 means all cores of
	// the machine. Workers are assigned to sockets round-robin in blocks
	// (fill socket 0 first), matching how affinity-aware engines place
	// threads.
	Workers int
	// Stealing enables cross-socket work stealing when a worker's own
	// socket queue drains.
	Stealing bool
	// Interference is the external slowdown factor applied to all memory
	// work (see hw.ExecContext); values < 1 are treated as 1.
	Interference float64
}

// Result summarizes a scheduler run.
type Result struct {
	// MakespanCycles is the virtual time at which the last worker finished
	// — the parallel runtime of the task set.
	MakespanCycles float64
	// TotalCycles is the sum of all per-worker busy cycles (the serial
	// work).
	TotalCycles float64
	// PerWorker holds each worker's busy cycles.
	PerWorker []float64
	// TasksRun is the number of executed tasks; Steals counts tasks
	// executed on a non-preferred socket.
	TasksRun int
	Steals   int
	// Workers is the number of simulated cores used.
	Workers int
}

// Speedup returns TotalCycles / MakespanCycles — the effective parallelism
// achieved.
func (r Result) Speedup() float64 {
	if r.MakespanCycles == 0 {
		return 0
	}
	return r.TotalCycles / r.MakespanCycles
}

// Imbalance returns (max-mean)/mean of per-worker busy cycles, 0 for a
// perfectly balanced run.
func (r Result) Imbalance() float64 {
	if len(r.PerWorker) == 0 {
		return 0
	}
	var sum, maxC float64
	for _, c := range r.PerWorker {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	mean := sum / float64(len(r.PerWorker))
	if mean == 0 {
		return 0
	}
	return (maxC - mean) / mean
}

// Scheduler runs task sets on a simulated machine.
type Scheduler struct {
	machine *hw.Machine
	opts    Options
}

// Workers returns the number of simulated cores the scheduler uses.
func (s *Scheduler) Workers() int { return s.opts.Workers }

// Machine returns the machine the scheduler simulates.
func (s *Scheduler) Machine() *hw.Machine { return s.machine }

// New returns a scheduler for machine m with the given options.
func New(m *hw.Machine, opts Options) (*Scheduler, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("sched: negative worker count %d: %w", opts.Workers, errs.ErrWorkersOutOfRange)
	}
	if opts.Workers == 0 {
		opts.Workers = m.TotalCores()
	}
	if opts.Workers > m.TotalCores() {
		return nil, fmt.Errorf("sched: %d workers exceed machine's %d cores: %w", opts.Workers, m.TotalCores(), errs.ErrWorkersOutOfRange)
	}
	if opts.Interference < 1 {
		opts.Interference = 1
	}
	return &Scheduler{machine: m, opts: opts}, nil
}

// workerHeap orders workers by virtual clock (ties by ID for determinism).
type workerHeap []*Worker

func (h workerHeap) Len() int { return len(h) }
func (h workerHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].ID < h[j].ID
}
func (h workerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)   { *h = append(*h, x.(*Worker)) }
func (h *workerHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}

// Run executes all tasks and returns the schedule's result. Tasks with a
// preferred socket go to that socket's queue; unpinned tasks are spread
// round-robin. Execution order is deterministic.
func (s *Scheduler) Run(tasks []Task) Result {
	res, _ := s.RunContext(context.Background(), tasks)
	return res
}

// RunContext is Run with cooperative cancellation: the context is checked at
// every morsel boundary (before each task dispatch), so an expired deadline
// or a cancelled client stops the schedule between tasks rather than after
// the whole set. A morsel in flight always completes — tasks are never
// interrupted mid-execution, matching how morsel-driven engines implement
// query cancellation. On cancellation the partial schedule's Result is
// returned together with the context's error (wrapped, errors.Is-compatible).
func (s *Scheduler) RunContext(ctx context.Context, tasks []Task) (Result, error) {
	m := s.machine
	nw := s.opts.Workers

	// Place workers on sockets: fill sockets in order, as a pinned engine
	// would.
	workers := make([]*Worker, nw)
	perSocket := make([]int, m.Sockets)
	for i := 0; i < nw; i++ {
		socket := i / m.CoresPerSocket
		if socket >= m.Sockets {
			socket = m.Sockets - 1
		}
		perSocket[socket]++
		workers[i] = &Worker{ID: i, Socket: socket, machine: m, totalWorkers: nw}
	}
	for _, w := range workers {
		ctx := hw.ExecContext{
			ActiveCoresOnSocket: perSocket[w.Socket],
			InterferenceFactor:  s.opts.Interference,
		}
		w.acct = hw.NewAccount(m, ctx)
	}

	// Socket-local FIFO queues.
	queues := make([][]Task, m.Sockets)
	rr := 0
	for _, t := range tasks {
		sock := t.Socket
		if sock < 0 || sock >= m.Sockets {
			sock = rr % m.Sockets
			rr++
		}
		queues[sock] = append(queues[sock], t)
	}
	heads := make([]int, m.Sockets)
	remaining := func(sock int) int { return len(queues[sock]) - heads[sock] }
	totalRemaining := len(tasks)

	h := make(workerHeap, len(workers))
	copy(h, workers)
	heap.Init(&h)

	res := Result{Workers: nw}
	var runErr error
	for totalRemaining > 0 && h.Len() > 0 {
		if err := ctx.Err(); err != nil {
			runErr = fmt.Errorf("sched: run aborted after %d of %d tasks: %w", res.TasksRun, len(tasks), err)
			break
		}
		w := heap.Pop(&h).(*Worker)
		// Prefer the local queue; otherwise steal from the fullest queue.
		sock := w.Socket
		if remaining(sock) == 0 {
			if !s.opts.Stealing {
				// This worker is done: do not re-queue it.
				continue
			}
			best, bestLeft := -1, 0
			for qs := range queues {
				if left := remaining(qs); left > bestLeft {
					best, bestLeft = qs, left
				}
			}
			if best == -1 {
				continue
			}
			sock = best
			res.Steals++
		}
		t := queues[sock][heads[sock]]
		heads[sock]++
		totalRemaining--

		before := w.clock
		t.Run(w)
		if w.clock < before {
			// Defensive: tasks must not rewind time.
			w.clock = before
		}
		w.tasks++
		res.TasksRun++
		heap.Push(&h, w)
	}

	res.PerWorker = make([]float64, nw)
	for i, w := range workers {
		res.PerWorker[i] = w.clock
		res.TotalCycles += w.clock
		if w.clock > res.MakespanCycles {
			res.MakespanCycles = w.clock
		}
	}
	return res, runErr
}

// Morsels splits n items into tasks of at most morselSize items each,
// calling fn(start, end, worker) for each morsel. Morsels are unpinned;
// pass them through PinRoundRobin to spread them over sockets explicitly.
func Morsels(n, morselSize int, name string, fn func(start, end int, w *Worker)) []Task {
	if morselSize <= 0 {
		morselSize = 1 << 14
	}
	var tasks []Task
	for start := 0; start < n; start += morselSize {
		end := start + morselSize
		if end > n {
			end = n
		}
		s, e := start, end
		tasks = append(tasks, Task{
			Name:   fmt.Sprintf("%s[%d:%d]", name, s, e),
			Socket: -1,
			Run:    func(w *Worker) { fn(s, e, w) },
		})
	}
	return tasks
}

// PinRoundRobin assigns preferred sockets to tasks round-robin over the
// machine's sockets, modelling NUMA-partitioned input.
func PinRoundRobin(tasks []Task, m *hw.Machine) []Task {
	for i := range tasks {
		tasks[i].Socket = i % m.Sockets
	}
	return tasks
}
