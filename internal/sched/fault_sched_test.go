package sched

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"hwstar/internal/errs"
	"hwstar/internal/fault"
	"hwstar/internal/hw"
)

// countingTasks returns n fixed-cost tasks that each atomically record their
// completion, so tests can assert exactly-once execution under faults.
func countingTasks(n int, cycles float64, ran *[]int32) []Task {
	*ran = make([]int32, n)
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name:   "count",
			Site:   "count",
			Socket: -1,
			Run: func(w *Worker) {
				atomic.AddInt32(&(*ran)[i], 1)
				w.AdvanceCycles(cycles)
			},
		}
	}
	return tasks
}

func TestPanicIsolationRetriesMorsel(t *testing.T) {
	m := hw.Server2S()
	inj := fault.New(fault.Config{Seed: 1, PanicProb: 1, MaxFaults: 1}) // exactly one panic
	s, err := New(m, Options{Workers: 4, Stealing: true, Inject: inj, IsolatePanics: true})
	if err != nil {
		t.Fatal(err)
	}
	var ran []int32
	res, err := s.RunContext(context.Background(), countingTasks(16, 100, &ran))
	if err != nil {
		t.Fatalf("isolated run failed: %v", err)
	}
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
	if res.Panics != 1 || res.TaskRetries != 1 {
		t.Fatalf("stats = %+v, want 1 panic / 1 retry", res.FaultStats)
	}
	if res.Redispatched == 0 {
		t.Fatal("panicked worker's morsel was not re-dispatched")
	}
	if got := inj.Counts()[fault.ClassPanic]; got != 1 {
		t.Fatalf("injector log shows %d panics", got)
	}
}

func TestUnisolatedPanicFailsRunWithStack(t *testing.T) {
	m := hw.Server2S()
	inj := fault.New(fault.Config{Seed: 1, PanicProb: 1, MaxFaults: 1})
	s, err := New(m, Options{Workers: 4, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	var ran []int32
	_, runErr := s.RunContext(context.Background(), countingTasks(16, 100, &ran))
	if !errors.Is(runErr, errs.ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", runErr)
	}
	if !strings.Contains(runErr.Error(), "goroutine") {
		t.Fatalf("error carries no stack:\n%v", runErr)
	}
}

func TestRealPanicIsRecoveredToo(t *testing.T) {
	m := hw.Server2S()
	s, err := New(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []Task{{Name: "boom", Run: func(w *Worker) { panic("kaboom") }}}
	_, runErr := s.RunContext(context.Background(), tasks)
	if !errors.Is(runErr, errs.ErrWorkerPanic) || !strings.Contains(runErr.Error(), "kaboom") {
		t.Fatalf("err = %v", runErr)
	}
}

func TestRetriesExhaustedGivesUp(t *testing.T) {
	m := hw.Server2S()
	// Unlimited panic budget: the morsel panics on every worker it lands on.
	inj := fault.New(fault.Config{Seed: 1, PanicProb: 1})
	s, err := New(m, Options{Workers: 8, Stealing: true, Inject: inj, IsolatePanics: true, MaxTaskRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ran []int32
	_, runErr := s.RunContext(context.Background(), countingTasks(4, 100, &ran))
	if !errors.Is(runErr, errs.ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic after retries exhausted", runErr)
	}
}

func TestStragglerRetiredAndRedispatched(t *testing.T) {
	m := hw.Server2S()
	const nTasks, cost = 64, 100.0

	run := func(threshold float64) (Result, []int32) {
		inj := fault.New(fault.Config{Seed: 1, StragglerWorkers: []int{0}, StragglerSkew: 8})
		s, err := New(m, Options{
			Workers: 8, Stealing: true, Inject: inj,
			StragglerThreshold: threshold, BlockSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		var ran []int32
		res, err := s.RunContext(context.Background(), countingTasks(nTasks, cost, &ran))
		if err != nil {
			t.Fatal(err)
		}
		return res, ran
	}

	naive, _ := run(0)
	resil, ran := run(3)
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
	if resil.StragglersRetired != 1 {
		t.Fatalf("stragglers retired = %d", resil.StragglersRetired)
	}
	if resil.Redispatched == 0 {
		t.Fatal("straggler's block was not re-dispatched")
	}
	if resil.MakespanCycles >= naive.MakespanCycles {
		t.Fatalf("re-dispatch did not help: resilient %.0f >= naive %.0f", resil.MakespanCycles, naive.MakespanCycles)
	}
}

func TestCoreLossSurvivesAndNeverLosesLastWorker(t *testing.T) {
	m := hw.Server2S()
	inj := fault.New(fault.Config{Seed: 1, LostCores: []int{0, 1, 2}})
	s, err := New(m, Options{Workers: 4, Stealing: true, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	var ran []int32
	res, err := s.RunContext(context.Background(), countingTasks(16, 100, &ran))
	if err != nil {
		t.Fatalf("core-loss run failed: %v", err)
	}
	if res.CoresLost != 3 {
		t.Fatalf("cores lost = %d", res.CoresLost)
	}
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}

	// Losing every core must keep the last worker alive instead of hanging.
	inj = fault.New(fault.Config{Seed: 1, LostCores: []int{0, 1, 2, 3}})
	s, err = New(m, Options{Workers: 4, Stealing: true, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.RunContext(context.Background(), countingTasks(8, 100, &ran))
	if err != nil {
		t.Fatalf("all-cores-lost run failed: %v", err)
	}
	if res.CoresLost != 3 {
		t.Fatalf("lost %d cores, the guard should spare one", res.CoresLost)
	}
}

func TestCoreLossWithoutStealingRebalances(t *testing.T) {
	m := hw.Server2S()
	// Lose every core on socket 1 (workers 4..7 on the 2s8c profile); its
	// queued tasks must migrate to socket 0 even with stealing off.
	inj := fault.New(fault.Config{Seed: 1, LostCores: []int{4, 5, 6, 7}})
	s, err := New(m, Options{Workers: 8, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	var ran []int32
	tasks := countingTasks(16, 100, &ran)
	for i := range tasks {
		tasks[i].Socket = i % 2 // half the work pinned to the dead socket
	}
	res, err := s.RunContext(context.Background(), tasks)
	if err != nil {
		t.Fatalf("rebalance run failed: %v", err)
	}
	for i, n := range ran {
		if n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
	if res.Redispatched == 0 {
		t.Fatal("stranded socket queue was not re-dispatched")
	}
}

func TestTransientFaultAbortsRunTyped(t *testing.T) {
	m := hw.Server2S()
	inj := fault.New(fault.Config{Seed: 1, TransientProb: 1, MaxFaults: 1})
	s, err := New(m, Options{Workers: 4, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	var ran []int32
	_, runErr := s.RunContext(context.Background(), countingTasks(16, 100, &ran))
	if !errors.Is(runErr, errs.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", runErr)
	}
}

func TestRunPropagatesWorkerPanic(t *testing.T) {
	m := hw.Server2S()
	inj := fault.New(fault.Config{Seed: 1, PanicProb: 1, MaxFaults: 1})
	s, err := New(m, Options{Workers: 2, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run should panic on an unrecovered worker panic")
		}
	}()
	s.Run([]Task{fixedTask(100)})
}

func TestFaultStatsAdd(t *testing.T) {
	a := FaultStats{Panics: 1, TaskRetries: 2, Redispatched: 3, StragglersRetired: 4, CoresLost: 5}
	b := a
	a.Add(b)
	want := FaultStats{Panics: 2, TaskRetries: 4, Redispatched: 6, StragglersRetired: 8, CoresLost: 10}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestFaultRunsAreDeterministic(t *testing.T) {
	m := hw.Server2S()
	run := func() Result {
		inj := fault.New(fault.Config{Seed: 5, PanicProb: 0.02, StragglerProb: 0.2, StragglerSkew: 8})
		s, err := New(m, Options{Workers: 8, Stealing: true, Inject: inj, IsolatePanics: true, StragglerThreshold: 3, BlockSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		var ran []int32
		res, err := s.RunContext(context.Background(), countingTasks(128, 100, &ran))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MakespanCycles != b.MakespanCycles || a.FaultStats != b.FaultStats {
		t.Fatalf("not deterministic:\n%+v\n%+v", a, b)
	}
}
