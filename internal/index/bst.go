package index

import (
	"hwstar/internal/cache"
	"hwstar/internal/hw"
)

// bstNodeBytes is the simulated footprint of one BST node: key, value, two
// child pointers, padded to half a cache line (typical allocator behaviour).
const bstNodeBytes = 32

// BST is an unbalanced binary search tree — the textbook in-memory index the
// keynote's hardware argument condemns: every level is a dependent load of
// one sparse cache line. Inserting keys in random order keeps the expected
// height at ~1.39·log2(n), which is the favourable case; the cache
// behaviour, not the asymptotics, is what loses.
type BST struct {
	root     *bstNode
	size     int
	nextAddr uint64
	base     uint64
}

type bstNode struct {
	key, val    int64
	left, right *bstNode
	addr        uint64
}

// NewBST returns an empty tree laying its nodes out at simulated base.
func NewBST(base uint64) *BST { return &BST{base: base} }

// Len returns the number of stored keys.
func (t *BST) Len() int { return t.size }

// Bytes returns the simulated memory footprint.
func (t *BST) Bytes() int64 { return int64(t.nextAddr) }

// Insert stores (key, value), replacing any existing value.
func (t *BST) Insert(key, val int64) {
	node := &t.root
	for *node != nil {
		n := *node
		switch {
		case key == n.key:
			n.val = val
			return
		case key < n.key:
			node = &n.left
		default:
			node = &n.right
		}
	}
	*node = &bstNode{key: key, val: val, addr: t.base + t.nextAddr}
	t.nextAddr += bstNodeBytes
	t.size++
}

// Get returns the value stored under key.
func (t *BST) Get(key int64) (int64, bool) {
	n := t.root
	for n != nil {
		switch {
		case key == n.key:
			return n.val, true
		case key < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return 0, false
}

// TracedGet is Get with each visited node pushed through the cache
// hierarchy; every level is one dependent random access.
func (t *BST) TracedGet(h *cache.Hierarchy, key int64) (int64, bool, float64) {
	var cycles float64
	n := t.root
	for n != nil {
		cycles += h.Access(n.addr)
		switch {
		case key == n.key:
			return n.val, true, cycles
		case key < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return 0, false, cycles
}

// Scan visits keys in [lo, hi] in ascending order.
func (t *BST) Scan(lo, hi int64, fn func(key, val int64) bool) {
	scanNode(t.root, lo, hi, fn)
}

func scanNode(n *bstNode, lo, hi int64, fn func(key, val int64) bool) bool {
	if n == nil {
		return true
	}
	if n.key > lo {
		if !scanNode(n.left, lo, hi, fn) {
			return false
		}
	}
	if n.key >= lo && n.key <= hi {
		if !fn(n.key, n.val) {
			return false
		}
	}
	if n.key < hi {
		return scanNode(n.right, lo, hi, fn)
	}
	return true
}

// Depth returns the depth of key's node (root = 1), or 0 when absent —
// diagnostic for the traced experiments.
func (t *BST) Depth(key int64) int {
	d := 0
	n := t.root
	for n != nil {
		d++
		switch {
		case key == n.key:
			return d
		case key < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return 0
}

// ProbeWork returns the analytic cost of `probes` random lookups against an
// index holding n entries with the given per-level bytes and branching: the
// BST walks log2(n) dependent lines, the B+-tree height-many node reads
// (each node a short burst of adjacent lines).
func ProbeWork(name string, probes int64, levels float64, bytesPerLevel int64, ws int64) hw.Work {
	return hw.Work{
		Name:            name,
		Tuples:          probes,
		ComputePerTuple: 4 * levels,
		RandomReads:     probes * int64(levels),
		RandomWS:        ws,
		SeqReadBytes:    probes * bytesPerLevel,
	}
}

// TracedScan visits keys in [lo, hi] (up to limit) in order, touching every
// visited node's line: each step of the in-order walk is another dependent
// sparse access — range scans are where the BST loses hardest.
func (t *BST) TracedScan(h *cache.Hierarchy, lo, hi int64, limit int) (int, float64) {
	var cycles float64
	visited := 0
	var walk func(n *bstNode) bool
	walk = func(n *bstNode) bool {
		if n == nil || visited >= limit {
			return visited < limit
		}
		cycles += h.Access(n.addr)
		if n.key > lo {
			if !walk(n.left) {
				return false
			}
		}
		if n.key >= lo && n.key <= hi {
			if visited >= limit {
				return false
			}
			visited++
		}
		if n.key < hi {
			return walk(n.right)
		}
		return true
	}
	walk(t.root)
	return visited, cycles
}
