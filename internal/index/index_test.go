package index

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hwstar/internal/cache"
	"hwstar/internal/hw"
	"hwstar/internal/workload"
)

// indexUnderTest abstracts the two structures for shared tests.
type indexUnderTest interface {
	Insert(key, val int64)
	Get(key int64) (int64, bool)
	Scan(lo, hi int64, fn func(key, val int64) bool)
	Len() int
}

func implementations() map[string]func() indexUnderTest {
	return map[string]func() indexUnderTest{
		"btree": func() indexUnderTest { return NewBTree(0) },
		"bst":   func() indexUnderTest { return NewBST(1 << 40) },
	}
}

func TestInsertGet(t *testing.T) {
	for name, mk := range implementations() {
		idx := mk()
		keys := workload.ShuffledInts(1, 5000)
		for _, k := range keys {
			idx.Insert(k, k*3)
		}
		if idx.Len() != 5000 {
			t.Fatalf("%s: len = %d", name, idx.Len())
		}
		for _, k := range keys {
			v, ok := idx.Get(k)
			if !ok || v != k*3 {
				t.Fatalf("%s: Get(%d) = %d, %v", name, k, v, ok)
			}
		}
		if _, ok := idx.Get(99999); ok {
			t.Fatalf("%s: found absent key", name)
		}
	}
}

func TestInsertReplaces(t *testing.T) {
	for name, mk := range implementations() {
		idx := mk()
		idx.Insert(5, 50)
		idx.Insert(5, 51)
		if idx.Len() != 1 {
			t.Fatalf("%s: duplicate insert grew index to %d", name, idx.Len())
		}
		if v, _ := idx.Get(5); v != 51 {
			t.Fatalf("%s: replace failed, got %d", name, v)
		}
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	for name, mk := range implementations() {
		idx := mk()
		for _, k := range workload.ShuffledInts(2, 1000) {
			idx.Insert(k, k)
		}
		var got []int64
		idx.Scan(100, 199, func(k, v int64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != 100 {
			t.Fatalf("%s: scan returned %d keys", name, len(got))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("%s: scan out of order", name)
		}
		if got[0] != 100 || got[99] != 199 {
			t.Fatalf("%s: scan bounds wrong: %d..%d", name, got[0], got[99])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	for name, mk := range implementations() {
		idx := mk()
		for i := int64(0); i < 100; i++ {
			idx.Insert(i, i)
		}
		var n int
		idx.Scan(0, 99, func(k, v int64) bool {
			n++
			return n < 5
		})
		if n != 5 {
			t.Fatalf("%s: early stop visited %d", name, n)
		}
	}
}

func TestBTreeHeightLogarithmic(t *testing.T) {
	bt := NewBTree(0)
	for _, k := range workload.ShuffledInts(3, 100000) {
		bt.Insert(k, k)
	}
	// order-32 tree of 100k keys: height ~ log_16(100000/16)+1 ≈ 4.
	if h := bt.Height(); h < 3 || h > 6 {
		t.Fatalf("height = %d, expected 3..6", h)
	}
	if bt.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestBSTDepth(t *testing.T) {
	bst := NewBST(0)
	for _, k := range workload.ShuffledInts(4, 4095) {
		bst.Insert(k, k)
	}
	if d := bst.Depth(workload.ShuffledInts(4, 4095)[0]); d < 1 {
		t.Fatal("depth of present key should be >= 1")
	}
	if d := bst.Depth(99999); d != 0 {
		t.Fatalf("depth of absent key = %d", d)
	}
	if bst.Bytes() != 4095*bstNodeBytes {
		t.Fatalf("Bytes = %d", bst.Bytes())
	}
}

func TestTracedGetMatchesGet(t *testing.T) {
	m := hw.Laptop()
	keys := workload.ShuffledInts(5, 20000)
	bt, bst := NewBTree(0), NewBST(1<<40)
	for _, k := range keys {
		bt.Insert(k, k*2)
		bst.Insert(k, k*2)
	}
	hb, hs := cache.FromMachine(m), cache.FromMachine(m)
	for _, k := range keys[:500] {
		v1, ok1, c1 := bt.TracedGet(hb, k)
		v2, ok2, c2 := bst.TracedGet(hs, k)
		if !ok1 || !ok2 || v1 != k*2 || v2 != k*2 {
			t.Fatalf("traced lookups wrong for %d", k)
		}
		if c1 <= 0 || c2 <= 0 {
			t.Fatal("traced cycles should be positive")
		}
	}
	_, ok, _ := bt.TracedGet(hb, -5)
	if ok {
		t.Fatal("traced get of absent key should miss")
	}
}

func TestBTreeBeatsBSTUnderTrace(t *testing.T) {
	// The E10 effect: on an out-of-cache index, random probes cost fewer
	// simulated cycles on the B+-tree than on the BST.
	m := hw.Laptop()
	const n = 1 << 17 // BST: 4 MiB of nodes, beyond L2, near L3 capacity
	keys := workload.ShuffledInts(6, n)
	bt, bst := NewBTree(0), NewBST(1<<40)
	for _, k := range keys {
		bt.Insert(k, k)
		bst.Insert(k, k)
	}
	hb, hs := cache.FromMachine(m), cache.FromMachine(m)
	probes := workload.UniformInts(7, 3000, n)
	var cb, cs float64
	for _, k := range probes {
		_, _, c1 := bt.TracedGet(hb, k)
		cb += c1
		_, _, c2 := bst.TracedGet(hs, k)
		cs += c2
	}
	if cb >= cs {
		t.Fatalf("B+-tree %.0f cycles should beat BST %.0f on out-of-cache probes", cb, cs)
	}
}

func TestProbeWork(t *testing.T) {
	m := hw.Server2S()
	w := ProbeWork("bst-probe", 1000, 17, 32, 1<<30)
	c := m.Cycles(w, hw.DefaultContext())
	if c <= 0 {
		t.Fatal("probe work should cost cycles")
	}
	// More levels must cost more.
	w2 := ProbeWork("btree-probe", 1000, 4, 256, 1<<30)
	if m.Cycles(w2, hw.DefaultContext()) >= c {
		t.Fatal("fewer levels should cost fewer cycles")
	}
}

// Property: both structures agree with a reference map and with each other
// under arbitrary insert sequences (including duplicates).
func TestIndexEquivalenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		bt, bst := NewBTree(0), NewBST(1<<40)
		ref := map[int64]int64{}
		for i, op := range ops {
			k, v := int64(op%512), int64(i)
			bt.Insert(k, v)
			bst.Insert(k, v)
			ref[k] = v
		}
		if bt.Len() != len(ref) || bst.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			b1, ok1 := bt.Get(k)
			b2, ok2 := bst.Get(k)
			if !ok1 || !ok2 || b1 != v || b2 != v {
				return false
			}
		}
		// Range scans agree and are sorted.
		collect := func(idx indexUnderTest) []int64 {
			var out []int64
			idx.Scan(0, 511, func(k, v int64) bool {
				out = append(out, k)
				return true
			})
			return out
		}
		a, b := collect(bt), collect(bst)
		if len(a) != len(ref) || len(b) != len(ref) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if i > 0 && a[i] <= a[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: B+-tree height stays logarithmic under sorted (adversarial for
// BSTs) insertion.
func TestBTreeSortedInsertionProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw)%5000 + 64
		bt := NewBTree(0)
		for i := 0; i < n; i++ {
			bt.Insert(int64(i), int64(i))
		}
		maxHeight := int(math.Ceil(math.Log(float64(n))/math.Log(btreeOrder/2))) + 2
		if bt.Height() > maxHeight {
			return false
		}
		for i := 0; i < n; i += 97 {
			if v, ok := bt.Get(int64(i)); !ok || v != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTracedScanCountsAndOrder(t *testing.T) {
	m := hw.Laptop()
	keys := workload.ShuffledInts(8, 5000)
	bt, bst := NewBTree(0), NewBST(1<<40)
	for _, k := range keys {
		bt.Insert(k, k)
		bst.Insert(k, k)
	}
	hb, hs := cache.FromMachine(m), cache.FromMachine(m)
	nb, cb := bt.TracedScan(hb, 100, 299, 1000)
	ns, cs := bst.TracedScan(hs, 100, 299, 1000)
	if nb != 200 || ns != 200 {
		t.Fatalf("visited %d / %d, want 200", nb, ns)
	}
	if cb <= 0 || cs <= 0 {
		t.Fatal("traced scans should cost cycles")
	}
	// Limit respected.
	nb, _ = bt.TracedScan(cache.FromMachine(m), 0, 4999, 50)
	ns, _ = bst.TracedScan(cache.FromMachine(m), 0, 4999, 50)
	if nb != 50 || ns != 50 {
		t.Fatalf("limit: visited %d / %d, want 50", nb, ns)
	}
}

func TestTracedScanBTreeBeatsBSTOnRanges(t *testing.T) {
	m := hw.Laptop()
	const n = 1 << 17
	keys := workload.ShuffledInts(9, n)
	bt, bst := NewBTree(0), NewBST(1<<40)
	for _, k := range keys {
		bt.Insert(k, k)
		bst.Insert(k, k)
	}
	hb, hs := cache.FromMachine(m), cache.FromMachine(m)
	var cb, cs float64
	for _, start := range workload.UniformInts(10, 200, n-200) {
		_, c1 := bt.TracedScan(hb, start, start+99, 100)
		cb += c1
		_, c2 := bst.TracedScan(hs, start, start+99, 100)
		cs += c2
	}
	if cb*2 > cs {
		t.Fatalf("B+-tree range scans (%.0f) should be >2x cheaper than BST (%.0f)", cb, cs)
	}
}
