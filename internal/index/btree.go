// Package index contrasts a cache-conscious B+-tree with a pointer-chasing
// binary search tree — the data-structure face of the keynote's argument.
// Both index int64 keys to int64 values and support lookups, inserts, and
// range scans; both expose the same traced mode that walks their node
// layout through the cache simulator, so experiment E10 can show where the
// binary tree's one-cache-line-per-level pointer chase loses to the
// B+-tree's line-packed nodes.
package index

import "hwstar/internal/cache"

// btreeOrder is the fan-out of the B+-tree. 32 keys of 8 bytes fill four
// cache lines per node: each level visited costs a handful of adjacent
// lines instead of one line per binary comparison.
const btreeOrder = 32

// nodeAddrSpace is the simulated size reserved per node for traced accesses.
const btreeNodeBytes = 1 << 10

// BTree is an in-memory B+-tree for int64 keys.
type BTree struct {
	root   *btreeNode
	height int
	size   int
	// nextAddr assigns simulated addresses to nodes in allocation order.
	nextAddr uint64
	base     uint64
}

type btreeNode struct {
	leaf     bool
	keys     []int64
	vals     []int64      // leaf payloads
	children []*btreeNode // interior children (len = len(keys)+1)
	next     *btreeNode   // leaf chain for range scans
	addr     uint64
}

// NewBTree returns an empty tree. base is the simulated address where its
// nodes are laid out (so multiple traced structures can coexist).
func NewBTree(base uint64) *BTree {
	t := &BTree{base: base}
	t.root = t.newNode(true)
	t.height = 1
	return t
}

func (t *BTree) newNode(leaf bool) *btreeNode {
	n := &btreeNode{leaf: leaf, addr: t.base + t.nextAddr}
	t.nextAddr += btreeNodeBytes
	return n
}

// Len returns the number of stored keys.
func (t *BTree) Len() int { return t.size }

// Height returns the tree height (1 for a lone leaf).
func (t *BTree) Height() int { return t.height }

// Bytes returns the simulated memory footprint.
func (t *BTree) Bytes() int64 { return int64(t.nextAddr) }

// search returns the child index to follow for key in node n: the first
// slot whose key exceeds key.
func search(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *BTree) Get(key int64) (int64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[search(n.keys, key)]
	}
	for i, k := range n.keys {
		if k == key {
			return n.vals[i], true
		}
	}
	return 0, false
}

// TracedGet is Get with every visited node's lines pushed through the cache
// hierarchy; it returns the value and the simulated access cycles.
func (t *BTree) TracedGet(h *cache.Hierarchy, key int64) (int64, bool, float64) {
	var cycles float64
	n := t.root
	for {
		// A lookup touches roughly half the node's key area.
		span := int64(len(n.keys)*8)/2 + 8
		cycles += h.AccessRange(n.addr, span, 64)
		if n.leaf {
			break
		}
		n = n.children[search(n.keys, key)]
	}
	for i, k := range n.keys {
		if k == key {
			return n.vals[i], true, cycles
		}
	}
	return 0, false, cycles
}

// Insert stores (key, value), replacing any existing value for key.
func (t *BTree) Insert(key, val int64) {
	// Replace in place when present (keeps size exact).
	if _, ok := t.Get(key); ok {
		t.update(key, val)
		return
	}
	newChild, splitKey := t.insert(t.root, key, val)
	if newChild != nil {
		newRoot := t.newNode(false)
		newRoot.keys = []int64{splitKey}
		newRoot.children = []*btreeNode{t.root, newChild}
		t.root = newRoot
		t.height++
	}
	t.size++
}

func (t *BTree) update(key, val int64) {
	n := t.root
	for !n.leaf {
		n = n.children[search(n.keys, key)]
	}
	for i, k := range n.keys {
		if k == key {
			n.vals[i] = val
			return
		}
	}
}

// insert adds key to the subtree at n, returning a new right sibling and
// separator key when n splits.
func (t *BTree) insert(n *btreeNode, key, val int64) (*btreeNode, int64) {
	if n.leaf {
		pos := search(n.keys, key)
		n.keys = append(n.keys, 0)
		copy(n.keys[pos+1:], n.keys[pos:])
		n.keys[pos] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[pos+1:], n.vals[pos:])
		n.vals[pos] = val
		if len(n.keys) <= btreeOrder {
			return nil, 0
		}
		return t.splitLeaf(n)
	}
	idx := search(n.keys, key)
	newChild, splitKey := t.insert(n.children[idx], key, val)
	if newChild == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[idx+1:], n.keys[idx:])
	n.keys[idx] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[idx+2:], n.children[idx+1:])
	n.children[idx+1] = newChild
	if len(n.keys) <= btreeOrder {
		return nil, 0
	}
	return t.splitInterior(n)
}

func (t *BTree) splitLeaf(n *btreeNode) (*btreeNode, int64) {
	mid := len(n.keys) / 2
	right := t.newNode(true)
	right.keys = append(right.keys, n.keys[mid:]...)
	right.vals = append(right.vals, n.vals[mid:]...)
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	right.next = n.next
	n.next = right
	return right, right.keys[0]
}

func (t *BTree) splitInterior(n *btreeNode) (*btreeNode, int64) {
	mid := len(n.keys) / 2
	splitKey := n.keys[mid]
	right := t.newNode(false)
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return right, splitKey
}

// Scan visits keys in [lo, hi] in ascending order via the leaf chain,
// calling fn for each; fn returning false stops the scan.
func (t *BTree) Scan(lo, hi int64, fn func(key, val int64) bool) {
	n := t.root
	for !n.leaf {
		n = n.children[search(n.keys, lo)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// TracedScan walks keys in [lo, hi] (up to limit) through the cache
// hierarchy: the descent to the start leaf plus the leaf chain, whose nodes
// are line-adjacent — the locality that makes B+-tree range scans cheap.
func (t *BTree) TracedScan(h *cache.Hierarchy, lo, hi int64, limit int) (int, float64) {
	var cycles float64
	n := t.root
	for {
		span := int64(len(n.keys)*8)/2 + 8
		cycles += h.AccessRange(n.addr, span, 64)
		if n.leaf {
			break
		}
		n = n.children[search(n.keys, lo)]
	}
	visited := 0
	for n != nil && visited < limit {
		cycles += h.AccessRange(n.addr, int64(len(n.keys)*8)+8, 64)
		for _, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi || visited >= limit {
				return visited, cycles
			}
			visited++
		}
		n = n.next
	}
	return visited, cycles
}
