package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicOnly enforces all-or-nothing atomicity per location: a variable or
// struct field whose address is ever passed to a sync/atomic function
// (atomic.AddInt64, atomic.LoadUint64, atomic.CompareAndSwapInt32, ...)
// must be accessed through sync/atomic everywhere. A plain read beside an
// atomic write is not "slightly racy": the compiler and the hardware are
// both free to tear, cache, or reorder the plain access, and the race
// detector only catches the interleavings a test happens to schedule. The
// mixed-access bug is silent by construction — the shard EWMAs and the vec
// controller's hot-path knobs are exactly the fields where a torn read
// becomes a wrong routing or tuning decision with no crash to point at it.
//
// The typed atomics (atomic.Int64, atomic.Uint64, atomic.Bool, ...) make
// mixed access unrepresentable and are the preferred fix; this analyzer
// polices the legacy function form, where the type system cannot.
//
// Exempt: the field's appearance as a composite-literal key (zero/initial
// value set before the value is published to any other goroutine).
var AtomicOnly = &Analyzer{
	Name: "atomiconly",
	Doc:  "a location accessed via sync/atomic anywhere is accessed atomically everywhere",
	Run:  runAtomicOnly,
}

func runAtomicOnly(pass *Pass) error {
	if !PathHasPrefix(pass.Path, "hwstar") {
		return nil
	}
	// Pass 1: find every &x handed to a sync/atomic function. atomicAt
	// remembers one witness site per object for the message; sanctioned
	// marks the identifiers inside those arguments as atomic uses.
	atomicAt := map[types.Object]token.Position{}
	sanctioned := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Callee(call).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // typed atomics are safe by construction
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				obj, id := addressedObj(pass, u.X)
				if obj == nil {
					continue
				}
				if _, seen := atomicAt[obj]; !seen {
					atomicAt[obj] = pass.Fset.Position(call.Pos())
				}
				sanctioned[id.Pos()] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}
	// Pass 2: every other appearance of those objects is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				// Field keys in a literal initialize the value before
				// publication; mark them sanctioned, keep walking values.
				for _, el := range cl.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							sanctioned[id.Pos()] = true
						}
					}
				}
				return true
			}
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id.Pos()] {
				return true
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				return true
			}
			if at, isAtomic := atomicAt[obj]; isAtomic {
				if obj.Pos() == id.Pos() {
					return true // the declaration itself
				}
				pass.Reportf(id.Pos(),
					"%s is accessed with sync/atomic at %s:%d but plainly here: mixed atomic/plain access is a silent data race — use sync/atomic (or a typed atomic) everywhere",
					obj.Name(), shortFile(at.Filename), at.Line)
			}
			return true
		})
	}
	return nil
}

// addressedObj resolves the operand of an & argument to the object it
// names — a variable or a struct field via selector — plus the identifier
// whose position marks this sanctioned use.
func addressedObj(pass *Pass, e ast.Expr) (types.Object, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(e), e
	case *ast.SelectorExpr:
		return pass.ObjectOf(e.Sel), e.Sel
	case *ast.IndexExpr:
		// &xs[i]: atomic access to a slice element; identity is the slice.
		return addressedObj(pass, e.X)
	}
	return nil, nil
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
