package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestSentErr(t *testing.T) {
	analysistest.Run(t, "testdata/senterr", "hwstar/internal/serve", analysis.SentErr)
}
