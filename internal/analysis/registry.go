package analysis

// All returns every hwlint analyzer in stable order. cmd/hwlint runs them
// all by default; -checks selects a subset by name.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFirst,
		SeededRand,
		SentErr,
		PairedResource,
		NoLockCopy,
		HotAlloc,
		GoroLeak,
		LockOrder,
		AtomicOnly,
		CommitProto,
	}
}

// ByName resolves analyzer names, preserving All()'s order and rejecting
// unknown names so a typo in CI fails loudly instead of silently checking
// nothing.
func ByName(names []string) ([]*Analyzer, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		return nil, &UnknownAnalyzerError{Name: n}
	}
	return out, nil
}

// UnknownAnalyzerError reports a -checks name that matches no analyzer.
type UnknownAnalyzerError struct{ Name string }

func (e *UnknownAnalyzerError) Error() string {
	return "unknown analyzer " + e.Name + " (run hwlint -list for the set)"
}
