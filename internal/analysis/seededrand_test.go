package analysis_test

import (
	"os/exec"
	"strings"
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata/seededrand", "hwstar/internal/sched", analysis.SeededRand)
}

// TestSeededRandScope: the same code judged as a package outside the
// determinism-critical set produces no diagnostics — table tooling and
// metrics may keep their own conventions. (workload used to be the
// out-of-scope witness here; it joined the scope when its draws became
// replay-relevant.)
func TestSeededRandScope(t *testing.T) {
	if diags := runOn(t, "testdata/seededrand", "hwstar/internal/table", analysis.SeededRand); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}

// runOn loads a testdata dir under an arbitrary import path and returns raw
// diagnostics, for tests that assert on scoping rather than want comments.
func runOn(t *testing.T, dir, asPath string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	pkg, err := analysis.LoadDir(strings.TrimSpace(string(root)), dir, asPath)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
