package analysis_test

import (
	"strings"
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestPairedResource(t *testing.T) {
	analysistest.Run(t, "testdata/pairedresource", "hwstar/internal/serve", analysis.PairedResource)
}

// The implementor exemption is per resource kind, not per package: trace
// manipulates its own spans freely (the ring recycles them), store hands
// segment writers across its checkpoint pipeline — but each package is
// still held to every *other* package's pairs.

func TestPairedResourceImplementorExemption(t *testing.T) {
	for _, d := range runOn(t, "testdata/pairedresource", "hwstar/internal/trace", analysis.PairedResource) {
		if strings.Contains(d.Message, "Span.End") {
			t.Fatalf("trace's own Span pair fired inside trace: %v", d)
		}
	}
}

func TestPairedResourceStoreImplementorExemption(t *testing.T) {
	for _, d := range runOn(t, "testdata/pairedresource", "hwstar/internal/store", analysis.PairedResource) {
		if strings.Contains(d.Message, "SegmentWriter.Close") || strings.Contains(d.Message, "SegmentReader.Close") {
			t.Fatalf("store's own segment pair fired inside store: %v", d)
		}
	}
}

// TestPairedResourceShardImplementorExemption: the Router pair added for
// PR 9 must not fire inside shard itself, while the stdlib Timer/Ticker
// pair still does.
func TestPairedResourceShardImplementorExemption(t *testing.T) {
	var tickerFired bool
	for _, d := range runOn(t, "testdata/pairedresource", "hwstar/internal/shard", analysis.PairedResource) {
		if strings.Contains(d.Message, "Router.Close") {
			t.Fatalf("shard's own Router pair fired inside shard: %v", d)
		}
		if strings.Contains(d.Message, "Ticker.Stop") {
			tickerFired = true
		}
	}
	if !tickerFired {
		t.Fatal("the stdlib Ticker pair went silent inside shard")
	}
}
