package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestPairedResource(t *testing.T) {
	analysistest.Run(t, "testdata/pairedresource", "hwstar/internal/serve", analysis.PairedResource)
}

// TestPairedResourceImplementorExemption: internal/trace manipulates its
// own spans freely (the ring recycles them); the check must not fire there.
func TestPairedResourceImplementorExemption(t *testing.T) {
	if diags := runOn(t, "testdata/pairedresource", "hwstar/internal/trace", analysis.PairedResource); len(diags) != 0 {
		t.Fatalf("implementing package produced diagnostics: %v", diags)
	}
}

// TestPairedResourceStoreImplementorExemption: internal/store hands segment
// writers across its checkpoint pipeline; the check must not fire there.
func TestPairedResourceStoreImplementorExemption(t *testing.T) {
	if diags := runOn(t, "testdata/pairedresource", "hwstar/internal/store", analysis.PairedResource); len(diags) != 0 {
		t.Fatalf("implementing package produced diagnostics: %v", diags)
	}
}
