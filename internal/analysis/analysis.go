// Package analysis is hwstar's in-tree static-analysis framework: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis API plus a
// package loader built on `go list -export` and the standard library's gc
// export-data importer.
//
// The keynote argues that tracking the hardware demands performance-
// engineering *discipline*, and four PRs in, hwstar has house rules that
// review alone already failed to hold: the constant rand.NewSource(1) retry
// jitter shipped in PR 2 and synchronized retry storms across servers until
// PR 3 found it. McKenney's rule for concurrency invariants applies to all
// of them — invariants must be tooling-checked, not reviewed. This package
// turns the house rules into compiler-grade checks:
//
//   - ctxfirst: context.Context is the first parameter of exported
//     functions, and library code never manufactures context.Background().
//   - seededrand: no global math/rand and no time-seeded sources in the
//     determinism-critical packages (sched, serve, fault, experiments, hw).
//   - senterr: sentinels from internal/errs are classified with errors.Is
//     (never ==) and wrapped with %w (never %v).
//   - pairedresource: a trace.Span that is started reaches End, and a
//     mem.Reservation that is granted reaches Release, on every path.
//   - nolockcopy: values of mutex-bearing types (metrics registry, governor)
//     are never copied.
//   - hotalloc: no interface-boxing calls (fmt and friends) inside loops in
//     the morsel-processing packages (scan, join, agg, vecexec).
//
// The framework is intentionally stdlib-only so the lint gate runs on a
// hermetic builder with no module downloads: `go run ./cmd/hwlint ./...`
// needs nothing but the Go toolchain that builds the tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. It is the in-tree analogue of
// golang.org/x/tools/go/analysis.Analyzer, so checks written here port
// mechanically to the upstream framework if the dependency ever lands.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hwlint:ignore suppression comments.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why.
	Doc string
	// Run inspects one type-checked package and reports violations via
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path ("hwstar/internal/serve"). Analyzers
	// scope their rules on it; the test harness substitutes the path a
	// testdata package should be judged as.
	Path string
	Fset *token.FileSet
	// Files holds the parsed, non-test source files of the package.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier uses or defines, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// Callee resolves the called function or method object of a call, or nil for
// indirect calls and conversions.
func (p *Pass) Callee(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.ObjectOf(fun).(*types.Func); ok {
			return f
		}
		// Conversions and builtins resolve to non-func objects; callers
		// treat nil as "not a function call".
		return nil
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Fn.
		if f, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether obj is the package-level function path.name
// (e.g. "context".Background).
func IsPkgFunc(obj types.Object, path, name string) bool {
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return false
	}
	return f.Pkg().Path() == path && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// NamedType reports whether t (after unwrapping pointers and aliases) is the
// named type path.name. Identity is judged by path and name, not pointer
// equality: a type loaded from export data and the same type checked from
// source are distinct *types.Named values.
func NamedType(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// PathHasPrefix reports whether the import path is pkg itself or a package
// beneath it.
func PathHasPrefix(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position, with //hwlint:ignore suppressions applied
// (see suppress.go). Malformed suppressions are themselves diagnostics.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = applySuppressions(pkg, diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
