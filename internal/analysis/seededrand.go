package analysis

import (
	"go/ast"
	"go/types"
)

// SeededRand guards the determinism discipline in the packages where
// reproducibility is load-bearing: the scheduler, the serving layer, the
// fault injector, the experiments, and the hardware model. This is the
// PR 2/3 jitter-bug class — serve's retry backoff shipped with a constant
// rand.NewSource(1), synchronizing retry storms across server instances,
// and the fix must not swing to the opposite failure (time-seeded sources
// that make chaos runs unreproducible).
//
// Flagged in scope:
//
//   - Any draw from the global math/rand (or math/rand/v2) source —
//     rand.Intn, rand.Float64, rand.Shuffle, ... — and rand.Seed. The global
//     source is process-wide shared state: seeded by time, raced by every
//     other user, impossible to replay.
//   - Constructing a source or generator from time.Now, directly
//     (rand.NewSource(time.Now().UnixNano())) or through a local variable
//     assigned from time.Now in the same function.
//
// The rule: determinism paths thread an explicit seed (fault.Config.Seed,
// serve.Options.JitterSeed, workload generators). Code that genuinely wants
// per-process entropy — jitter identity, not reproducibility — reads
// crypto/rand once for a seed, which this analyzer deliberately permits.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "no global math/rand and no time-seeded sources in determinism-critical packages",
	Run:  runSeededRand,
}

// The scope tracks the determinism frontier: every tier where a replayed
// seed must reproduce a run. The PR 6-9 tiers (frontend, store, shard,
// cluster) and the vectorized executor joined when they started making
// seed-dependent decisions — hedge delays, replica choice, workload draws.
var seededRandScope = []string{
	"hwstar/internal/sched",
	"hwstar/internal/serve",
	"hwstar/internal/fault",
	"hwstar/internal/experiments",
	"hwstar/internal/hw",
	"hwstar/internal/shard",
	"hwstar/internal/store",
	"hwstar/internal/frontend",
	"hwstar/internal/cluster",
	"hwstar/internal/vecexec",
	"hwstar/internal/workload",
}

// randConstructors take an explicit seed or source and are therefore the
// *approved* way to use math/rand; everything else at package level draws
// from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runSeededRand(pass *Pass) error {
	inScope := false
	for _, p := range seededRandScope {
		if PathHasPrefix(pass.Path, p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncRand(pass, fn)
			return true
		})
	}
	return nil
}

func checkFuncRand(pass *Pass, fn *ast.FuncDecl) {
	// Pass 1: taint local variables any of whose assignments mention
	// time.Now. `seed := time.Now().UnixNano()` taints seed even when the
	// source construction happens lines later.
	tainted := map[types.Object]bool{}
	taintRHS := func(lhs []ast.Expr, rhs []ast.Expr) {
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			var r ast.Expr
			switch {
			case len(rhs) == len(lhs):
				r = rhs[i]
			case len(rhs) == 1:
				r = rhs[0]
			}
			if r != nil && mentionsTimeNow(pass, r) {
				if obj := pass.ObjectOf(id); obj != nil {
					tainted[obj] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			taintRHS(n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, id := range n.Names {
				lhs[i] = id
			}
			taintRHS(lhs, n.Values)
		}
		return true
	})

	// Pass 2: flag global draws and time-derived seeds.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := pass.Callee(call)
		f, ok := obj.(*types.Func)
		if !ok || f.Pkg() == nil || !isRandPkg(f.Pkg().Path()) {
			return true
		}
		if f.Type().(*types.Signature).Recv() != nil {
			return true // methods on a threaded *rand.Rand / Source are fine
		}
		if !randConstructors[f.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the global math/rand source: nondeterministic and racy — thread a seeded *rand.Rand (the PR 2/3 jitter-bug class)",
				f.Name())
			return true
		}
		for _, arg := range call.Args {
			if mentionsTaintOutsideNestedConstructor(pass, arg, tainted) {
				pass.Reportf(call.Pos(),
					"rand.%s seeded from time.Now: unreproducible in a determinism path — thread an explicit seed, or read crypto/rand if this is jitter identity, not replay",
					f.Name())
				break
			}
		}
		return true
	})
}

func mentionsTimeNow(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if obj := pass.Callee(call); obj != nil && IsPkgFunc(obj, "time", "Now") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsTaintOutsideNestedConstructor reports whether e mentions time.Now
// or a tainted local, without descending into nested rand constructor calls:
// in rand.New(rand.NewSource(seed)) the inner call carries (and reports) the
// taint itself, and one diagnostic per construct is enough.
func mentionsTaintOutsideNestedConstructor(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := pass.Callee(n); obj != nil {
				if IsPkgFunc(obj, "time", "Now") {
					found = true
					return false
				}
				if f, ok := obj.(*types.Func); ok && f.Pkg() != nil && isRandPkg(f.Pkg().Path()) && randConstructors[f.Name()] {
					return false
				}
			}
		case *ast.Ident:
			if obj := pass.ObjectOf(n); obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
