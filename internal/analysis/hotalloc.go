package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc polices the morsel-processing packages — scan, join, agg,
// vecexec — for per-iteration interface boxing. The keynote's discipline is
// that the inner loop tracks the hardware: a fmt.Sprintf per partition (or
// worse, per row) boxes its operands onto the heap, and the allocation +
// format-parse cost dwarfs the arithmetic the loop exists to do. PR 4's
// presize work bought 1.6x on exactly this class of waste.
//
// Flagged: inside any for/range loop in a hot package, a call whose final
// parameter is variadic ...interface{} receiving at least one non-interface
// argument (fmt.Sprintf, fmt.Errorf, Span.Annotate, log.Printf, ...).
//
// Exempt: calls that terminate the loop — the whole call is an argument to
// panic, or part of a return statement — because they run at most once.
// Function literals *defined* in a loop are analyzed on their own schedule,
// not the loop's: a task body built per partition runs once per task, and
// its own loops are checked when the literal is visited.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no interface-boxing calls (fmt and friends) inside loops in scan/join/agg/vecexec/serve",
	Run:  runHotAlloc,
}

// serve joined the scope when the vectorized scan moved batch execution into
// it: runBatch's result loop and vecScanMorsel's block loop are now as hot
// as anything in scan. compress and shard joined with the PR 8/9 tiers —
// the block codecs run per-block inside every vectorized scan, and the
// router's dispatch/EWMA loops sit on every request path.
var hotAllocScope = []string{
	"hwstar/internal/scan",
	"hwstar/internal/join",
	"hwstar/internal/agg",
	"hwstar/internal/vecexec",
	"hwstar/internal/serve",
	"hwstar/internal/compress",
	"hwstar/internal/shard",
}

func runHotAlloc(pass *Pass) error {
	inScope := false
	for _, p := range hotAllocScope {
		if PathHasPrefix(pass.Path, p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				hotWalk(pass, fd.Body, 0, false)
			}
		}
	}
	return nil
}

// hotWalk tracks loop depth and whether the current expression terminates
// the iteration (return/panic), descending into function literals with a
// fresh loop depth.
func hotWalk(pass *Pass, n ast.Node, loopDepth int, terminal bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			// Init runs once; Cond and Post run per iteration.
			hotWalkParts(pass, loopDepth, []ast.Node{m.Init})
			hotWalkParts(pass, loopDepth+1, []ast.Node{m.Cond, m.Post})
			hotWalk(pass, m.Body, loopDepth+1, false)
			return false
		case *ast.RangeStmt:
			hotWalk(pass, m.X, loopDepth, false)
			hotWalk(pass, m.Body, loopDepth+1, false)
			return false
		case *ast.FuncLit:
			hotWalk(pass, m.Body, 0, false)
			return false
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				hotWalk(pass, r, loopDepth, true)
			}
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "panic" && pass.ObjectOf(id) == types.Universe.Lookup("panic") {
				for _, a := range m.Args {
					hotWalk(pass, a, loopDepth, true)
				}
				return false
			}
			if loopDepth > 0 && !terminal {
				checkBoxingCall(pass, m, loopDepth)
			}
			return true
		}
		return true
	})
}

func hotWalkParts(pass *Pass, loopDepth int, parts []ast.Node) {
	for _, p := range parts {
		if p != nil {
			hotWalk(pass, p, loopDepth, false)
		}
	}
}

func checkBoxingCall(pass *Pass, call *ast.CallExpr, depth int) {
	sig, ok := types.Unalias(pass.TypeOf(call.Fun)).(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return
	}
	iface, ok := types.Unalias(slice.Elem()).Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return
	}
	fixed := sig.Params().Len() - 1
	for i := fixed; i < len(call.Args); i++ {
		t := pass.TypeOf(call.Args[i])
		if t == nil {
			continue
		}
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			name := "call"
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			case *ast.Ident:
				name = fun.Name
			}
			pass.Reportf(call.Pos(),
				"%s boxes its arguments to interface{} inside a loop (depth %d) in a morsel-processing package: hoist it, precompute, or use strconv",
				name, depth)
			return
		}
	}
}
