// Package analysistest runs one analyzer over a testdata package and checks
// its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the suites
// port mechanically if the upstream dependency ever lands.
//
// Testdata packages live under internal/analysis/testdata/<analyzer>/ — a
// directory name the go tool ignores, so the deliberately-broken code in
// them is invisible to builds, tests, and hwlint itself. They are still
// fully type-checked: imports of hwstar/internal/... resolve against the
// real module's export data, so the analyzers exercise the same type
// information they see in production.
//
// Every line that should trigger a diagnostic carries a want comment:
//
//	err := g.Reserve(0) // want `never reaches`
//
// Lines without a want comment assert the negative: any diagnostic on them
// fails the test. A want comment may hold several quoted regexps when one
// line triggers several diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"hwstar/internal/analysis"
)

// Run loads dir as a package with import path asPath, applies the analyzer
// (suppressions included), and compares diagnostics with want comments.
// asPath controls the scoping rules the package is judged under — pass the
// path of the production package the testdata stands in for.
func Run(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := analysis.LoadDir(root, dir, asPath)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantRE pulls the quoted regexps out of a want comment: double-quoted or
// backquoted strings after the word `want`.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func collectWants(t *testing.T, pkg *analysis.Package) map[posKey][]*want {
	t.Helper()
	wants := map[posKey][]*want{}
	for _, f := range pkg.Files {
		var comments []*ast.Comment
		for _, cg := range f.Comments {
			comments = append(comments, cg.List...)
		}
		for _, c := range comments {
			text := strings.TrimPrefix(c.Text, "//")
			idx := strings.Index(text, "want ")
			if idx < 0 {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			key := posKey{filepath.Base(pos.Filename), pos.Line}
			for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return wants
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		wd, _ := os.Getwd()
		return "", fmt.Errorf("go list -m in %s: %w", wd, err)
	}
	return strings.TrimSpace(string(out)), nil
}
