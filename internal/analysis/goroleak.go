package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak demands that every goroutine launched in library code carry
// structural evidence of termination. This is the PR 9 hedged-dispatch leak
// class made a compile-time rule: the first draft of the hedge path sent the
// loser's result on an unbuffered channel the winner had stopped reading,
// and every cancelled hedge parked a goroutine forever. The fix — a result
// channel buffered to the number of potential senders — is exactly the kind
// of invariant review cannot hold across refactors, so the analyzer holds
// it instead.
//
// For each `go` statement whose body is visible (a function literal, or a
// function/method defined in the same package), at least one of these
// termination proofs must appear in the body:
//
//   - join: the body calls Done() on a sync.WaitGroup (directly or
//     deferred) — someone Waits for it;
//   - cancellation: the body receives from a context's Done() channel;
//   - close signal: the body receives from (or ranges over) a channel that
//     this package close()s somewhere — the worker-loop idiom;
//   - bounded shape: the body has no infinite loop, no receive that can
//     block forever (time channels are bounded), and every send targets a
//     channel constructed with a buffer — the fire-and-collect idiom, where
//     the buffer must cover the sender count so abandoned senders still
//     complete.
//
// Goroutines whose bodies live in other packages are not judged (the callee
// owns its lifecycle); experiments and bench drivers are exempt wholesale,
// as they own their run-to-completion lifetimes the way binaries do.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every goroutine in library code has a provable termination path (ctx.Done select, WaitGroup join, close signal, or buffered result sends)",
	Run:  runGoroLeak,
}

var goroLeakExempt = []string{
	"hwstar/internal/experiments",
	"hwstar/internal/bench",
}

func runGoroLeak(pass *Pass) error {
	if !PathHasPrefix(pass.Path, "hwstar/internal") {
		return nil
	}
	for _, p := range goroLeakExempt {
		if PathHasPrefix(pass.Path, p) {
			return nil
		}
	}
	closed := collectClosedChans(pass)
	buffered := collectBufferedChans(pass)
	bodies := collectFuncBodies(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, g, bodies)
			if body == nil {
				return true
			}
			if !terminationEvidence(pass, body, closed, buffered) {
				pass.Reportf(g.Pos(),
					"goroutine has no provable termination path: select on ctx.Done(), join it via a WaitGroup, receive from a package-closed channel, or send only to buffered channels (the PR 9 hedged-dispatch leak class)")
			}
			return true
		})
	}
	return nil
}

// collectFuncBodies indexes the package's named function and method bodies,
// so `go s.worker()` is judged by worker's own body.
func collectFuncBodies(pass *Pass) map[types.Object]*ast.BlockStmt {
	bodies := map[types.Object]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				bodies[obj] = fd.Body
			}
		}
	}
	return bodies
}

// collectClosedChans returns the objects (fields and package-level or local
// variables) that appear as the operand of a close() call anywhere in the
// package: a receive from one of these is a join-via-close signal.
func collectClosedChans(pass *Pass) map[types.Object]bool {
	closed := map[types.Object]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "close" || pass.ObjectOf(id) != types.Universe.Lookup("close") {
				return true
			}
			if obj := chanIdentity(pass, call.Args[0]); obj != nil {
				closed[obj] = true
			}
			return true
		})
	}
	return closed
}

// collectBufferedChans returns the objects assigned a buffered make(chan)
// at least once and an unbuffered make(chan) never: a send on one of these
// cannot park the sender past the buffer, and the buffer is the author's
// claim that it covers the sender count.
func collectBufferedChans(pass *Pass) map[types.Object]bool {
	buffered := map[types.Object]bool{}
	unbuffered := map[types.Object]bool{}
	note := func(lhs, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || pass.ObjectOf(id) != types.Universe.Lookup("make") {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		if _, ok := types.Unalias(pass.TypeOf(call.Args[0])).Underlying().(*types.Chan); !ok {
			return
		}
		obj := chanIdentity(pass, lhs)
		if obj == nil {
			return
		}
		cap := false
		if len(call.Args) >= 2 {
			lit, isLit := ast.Unparen(call.Args[1]).(*ast.BasicLit)
			cap = !isLit || lit.Value != "0"
		}
		if cap {
			buffered[obj] = true
		} else {
			unbuffered[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						note(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						note(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	for obj := range unbuffered {
		delete(buffered, obj)
	}
	return buffered
}

// chanIdentity resolves a channel expression to the object that names it: a
// local or package variable, or a struct field (s.intake and r.intake are
// the same identity — field-level, not instance-level, which is the right
// granularity for "does this package close it").
func chanIdentity(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.ObjectOf(e.Sel)
	}
	return nil
}

// goBody resolves the body a go statement runs: a literal's own body, or
// the declaration of a same-package function or method.
func goBody(pass *Pass, g *ast.GoStmt, bodies map[types.Object]*ast.BlockStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if obj := pass.Callee(g.Call); obj != nil {
		return bodies[obj]
	}
	return nil
}

// terminationEvidence reports whether body carries any of the four
// termination proofs. Nested go statements are judged at their own launch
// sites; nested function literals are walked, because a deferred
// `func() { wg.Done() }()` is still this goroutine's join.
func terminationEvidence(pass *Pass, body *ast.BlockStmt, closed, buffered map[types.Object]bool) bool {
	// Locals aliased from a closed channel carry the close signal:
	// `hi := s.intake` then `<-hi` still joins on close(s.intake).
	aliases := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			src := chanIdentity(pass, as.Rhs[i])
			dst := chanIdentity(pass, as.Lhs[i])
			if src != nil && dst != nil && (closed[src] || aliases[src]) {
				aliases[dst] = true
			}
		}
		return true
	})
	isClosed := func(e ast.Expr) bool {
		obj := chanIdentity(pass, e)
		return obj != nil && (closed[obj] || aliases[obj])
	}

	var joined, unbounded bool
	recvOK := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isClosed(e) {
			joined = true
			return true
		}
		if call, ok := e.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				joined = true // <-ctx.Done() — any context implementation
				return true
			}
			if obj := pass.Callee(call); obj != nil && IsPkgFunc(obj, "time", "After") {
				return true // bounded wait
			}
		}
		if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "C" {
			if t := pass.TypeOf(sel.X); NamedType(t, "time", "Timer") || NamedType(t, "time", "Ticker") {
				return true // timer/ticker fire is a bounded wait
			}
		}
		return false
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				// A nested launch is its own analysis unit; its call
				// arguments still execute here.
				for _, a := range m.Call.Args {
					walk(a)
				}
				return false
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					if NamedType(pass.TypeOf(sel.X), "sync", "WaitGroup") {
						joined = true
					}
				}
				return true
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range m.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				for _, c := range m.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm != nil && !hasDefault {
						// Blocking select: judge each comm op.
						switch comm := cc.Comm.(type) {
						case *ast.ExprStmt:
							if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW && !recvOK(u.X) {
								unbounded = true
							}
						case *ast.AssignStmt:
							for _, r := range comm.Rhs {
								if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW && !recvOK(u.X) {
									unbounded = true
								}
							}
						case *ast.SendStmt:
							if !isBufferedSend(pass, comm.Chan, buffered) {
								unbounded = true
							}
						}
					}
					for _, s := range cc.Body {
						walk(s)
					}
				}
				return false
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !recvOK(m.X) {
					unbounded = true
				}
				return true
			case *ast.SendStmt:
				if !isBufferedSend(pass, m.Chan, buffered) {
					unbounded = true
				}
				return true
			case *ast.ForStmt:
				if m.Cond == nil {
					unbounded = true // for {} terminates only via a signal judged above
				}
				return true
			case *ast.RangeStmt:
				if _, isChan := types.Unalias(pass.TypeOf(m.X)).Underlying().(*types.Chan); isChan {
					if isClosed(m.X) {
						joined = true
					} else {
						unbounded = true
					}
				}
				return true
			}
			return true
		})
	}
	walk(body)
	return joined || !unbounded
}

func isBufferedSend(pass *Pass, ch ast.Expr, buffered map[types.Object]bool) bool {
	obj := chanIdentity(pass, ch)
	return obj != nil && buffered[obj]
}
