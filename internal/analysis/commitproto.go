package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CommitProto enforces the durable tier's commit protocol in
// hwstar/internal/store. The protocol is the whole crash-safety story:
// every byte headed for a committed name is first written to a temp file,
// fsynced, and renamed into place, and the rename IS the commit point —
// followed by a directory sync so the rename itself is durable. PR 7 proved
// the protocol with 128 seeded kill cycles and PR 8 still found two
// recovery bugs at its edges (the torn CURRENT, the checkpoint lost-update
// race); what it cannot survive is a future write that skips the temp hop,
// because a crash mid-write then tears a *committed* file, and the
// checksum fallback can only fall back as far as the history gc keeps.
//
// In internal/store the analyzer reports:
//
//   - os.WriteFile / os.Create / os.Truncate (and File.Truncate): in-place
//     mutation of a possibly-committed name, no temp hop;
//   - os.OpenFile with a writable mode (O_WRONLY / O_RDWR / O_APPEND) on a
//     path that is not visibly a temp path (no ".tmp" literal and no
//     tmp-named variable in the path expression);
//   - os.Rename whose source is not visibly a temp path — committed names
//     are only ever created by renaming a fsynced temp;
//   - os.Rename with no File.Sync call lexically before it in the same
//     function — renaming unsynced bytes commits garbage on power loss;
//   - os.Rename with no directory sync (syncDir or another Sync call)
//     lexically after it in the same function — the rename is not durable
//     until the directory entry is.
var CommitProto = &Analyzer{
	Name: "commitproto",
	Doc:  "internal/store writes follow write-temp, fsync, rename; committed files are never written in place",
	Run:  runCommitProto,
}

func runCommitProto(pass *Pass) error {
	if !PathHasPrefix(pass.Path, "hwstar/internal/store") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCommitProtoFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkCommitProtoFunc(pass *Pass, body *ast.BlockStmt) {
	var syncs []token.Pos // File.Sync / syncDir call positions
	var renames []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSyncCall(pass, call) {
			syncs = append(syncs, call.Pos())
			return true
		}
		obj := pass.Callee(call)
		if obj == nil {
			return true
		}
		switch {
		case IsPkgFunc(obj, "os", "WriteFile"):
			pass.Reportf(call.Pos(),
				"os.WriteFile writes in place: a crash mid-write tears a committed file — write a temp, fsync, rename (the commit point must stay the rename)")
		case IsPkgFunc(obj, "os", "Create"):
			pass.Reportf(call.Pos(),
				"os.Create truncates the named file in place: committed files are immutable — create a temp, fsync, rename")
		case IsPkgFunc(obj, "os", "Truncate") || isFileMethod(obj, "Truncate"):
			pass.Reportf(call.Pos(),
				"Truncate mutates a possibly-committed file in place: committed files are immutable")
		case IsPkgFunc(obj, "os", "OpenFile"):
			if len(call.Args) >= 2 && writableFlags(pass, call.Args[1]) && !tempPathExpr(call.Args[0]) {
				pass.Reportf(call.Pos(),
					"os.OpenFile opens a non-temp path for writing: committed files are immutable — write to a .tmp sibling and rename over the committed name")
			}
		case IsPkgFunc(obj, "os", "Rename"):
			if len(call.Args) == 2 && !tempPathExpr(call.Args[0]) {
				pass.Reportf(call.Pos(),
					"os.Rename source is not a temp path: the committed name must only ever be produced by renaming a fsynced temp file")
			}
			renames = append(renames, call)
		}
		return true
	})
	sort.Slice(syncs, func(i, j int) bool { return syncs[i] < syncs[j] })
	for _, r := range renames {
		var before, after bool
		for _, s := range syncs {
			if s < r.Pos() {
				before = true
			} else {
				after = true
			}
		}
		if !before {
			pass.Reportf(r.Pos(),
				"os.Rename with no fsync before it in this function: renaming unsynced bytes makes the commit point meaningless — File.Sync the temp first")
		}
		if !after {
			pass.Reportf(r.Pos(),
				"os.Rename with no directory sync after it in this function: the rename is not durable until the directory entry is — call syncDir")
		}
	}
}

// isSyncCall recognizes both halves of the durability handshake: a Sync
// method call (File.Sync on the temp file, or the opened directory in
// syncDir) and a call to a function named syncDir.
func isSyncCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Sync" || fun.Sel.Name == "syncDir"
	case *ast.Ident:
		return fun.Name == "syncDir"
	}
	return false
}

func isFileMethod(obj types.Object, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && NamedType(sig.Recv().Type(), "os", "File")
}

// writableFlags reports whether a flag expression names any writing mode.
// O_CREATE alone (with the zero O_RDONLY) cannot modify committed bytes.
func writableFlags(pass *Pass, e ast.Expr) bool {
	writable := false
	ast.Inspect(e, func(n ast.Node) bool {
		name := ""
		switch n := n.(type) {
		case *ast.SelectorExpr:
			name = n.Sel.Name
		case *ast.Ident:
			name = n.Name
		}
		switch name {
		case "O_WRONLY", "O_RDWR", "O_APPEND", "O_TRUNC":
			writable = true
		}
		return true
	})
	return writable
}

// tempPathExpr reports whether a path expression is visibly a temp path:
// it mentions a ".tmp" string literal or an identifier whose name contains
// "tmp"/"temp" (w.tmp, tmpName). The naming convention is the protocol's
// own: recovery sweeps *.tmp, so temp files must wear the suffix.
func tempPathExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if n.Kind == token.STRING && strings.Contains(strings.ToLower(n.Value), ".tmp") {
				found = true
			}
		case *ast.Ident:
			lower := strings.ToLower(n.Name)
			if strings.Contains(lower, "tmp") || strings.Contains(lower, "temp") {
				found = true
			}
		}
		return !found
	})
	return found
}
