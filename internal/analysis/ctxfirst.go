package analysis

import (
	"go/ast"
)

// CtxFirst enforces hwstar's context discipline, the house rule PR 1
// established when the public API went context-first:
//
//  1. An exported function or method that takes a context.Context takes it
//     as its first parameter. Mid-signature contexts invite call sites that
//     forget to thread cancellation.
//  2. Library code never manufactures context.Background() or context.TODO():
//     a fresh root context severs cancellation and trace propagation from
//     the caller (dropping deadlines, values, and spans on the floor).
//     Detaching from cancellation deliberately is what context.WithoutCancel
//     is for — it keeps the values. Binaries (cmd/..., examples/...) and the
//     experiment/bench drivers own their root contexts and are exempt.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions take context.Context first; library code never calls context.Background()",
	Run:  runCtxFirst,
}

// backgroundExempt lists hwstar packages that own their root contexts: the
// experiment and benchmark drivers are mains in spirit, invoked at the top
// of a process, not from request paths.
var backgroundExempt = []string{
	"hwstar/internal/experiments",
	"hwstar/internal/bench",
}

func ctxBackgroundBanned(path string) bool {
	if !PathHasPrefix(path, "hwstar") || PathHasPrefix(path, "hwstar/cmd") || PathHasPrefix(path, "hwstar/examples") {
		return false
	}
	for _, p := range backgroundExempt {
		if PathHasPrefix(path, p) {
			return false
		}
	}
	return true
}

func runCtxFirst(pass *Pass) error {
	banBackground := ctxBackgroundBanned(pass.Path)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Name.IsExported() && n.Type.Params != nil {
					checkCtxPosition(pass, n)
				}
			case *ast.CallExpr:
				if !banBackground {
					return true
				}
				if obj := pass.Callee(n); obj != nil {
					if IsPkgFunc(obj, "context", "Background") || IsPkgFunc(obj, "context", "TODO") {
						pass.Reportf(n.Pos(),
							"context.%s in library code severs cancellation and trace propagation: thread the caller's ctx (or context.WithoutCancel to detach deliberately)",
							obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkCtxPosition(pass *Pass, fn *ast.FuncDecl) {
	// Flatten the parameter list: one entry per declared name (or per
	// anonymous field).
	idx := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if NamedType(pass.TypeOf(field.Type), "context", "Context") && idx != 0 {
			pass.Reportf(field.Pos(),
				"%s: context.Context must be the first parameter (found at position %d)",
				fn.Name.Name, idx+1)
			return
		}
		idx += n
	}
}
