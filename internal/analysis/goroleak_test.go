package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata/goroleak", "hwstar/internal/shard", analysis.GoroLeak)
}

// TestGoroLeakScope: the same code judged as an experiments driver produces
// no diagnostics — run-to-completion binaries own their lifetimes the way
// main does.
func TestGoroLeakScope(t *testing.T) {
	if diags := runOn(t, "testdata/goroleak", "hwstar/internal/experiments", analysis.GoroLeak); len(diags) != 0 {
		t.Fatalf("exempt package produced diagnostics: %v", diags)
	}
}
