package analysis

import (
	"go/ast"
	"strings"
)

// Suppression comments let a reviewed exemption live next to the code it
// exempts, with the reason on the record:
//
//	//hwlint:ignore ctxfirst compat shim: Run is the documented no-context bridge
//
// The form is `//hwlint:ignore name[,name...] reason`. The reason is
// mandatory — a suppression without one is itself a violation, as is one
// naming an unknown analyzer. A suppression covers its own line and the
// line below it, so it works both trailing a statement and standing above
// one.
const ignorePrefix = "//hwlint:ignore"

type suppression struct {
	names   map[string]bool
	file    string
	line    int
	comment *ast.Comment
}

// applySuppressions filters pkg's suppressed diagnostics out of diags and
// appends a diagnostic for every malformed suppression in pkg. Names are
// validated against the full registry, not the analyzers selected for this
// run: a comment suppressing an unselected analyzer is still well-formed.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var sups []suppression
	report := func(c *ast.Comment, msg string) {
		diags = append(diags, Diagnostic{
			Analyzer: "hwlint",
			Pos:      pkg.Fset.Position(c.Pos()),
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(c, "malformed //hwlint:ignore: want \"//hwlint:ignore analyzer[,analyzer] reason\"")
					continue
				}
				names := map[string]bool{}
				bad := false
				for _, n := range strings.Split(fields[0], ",") {
					if !known[n] {
						report(c, "//hwlint:ignore names unknown analyzer "+n)
						bad = true
						break
					}
					names[n] = true
				}
				if bad {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sups = append(sups, suppression{names: names, file: pos.Filename, line: pos.Line, comment: c})
			}
		}
	}
	if len(sups) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.names[d.Analyzer] && d.Pos.Filename == s.file &&
				(d.Pos.Line == s.line || d.Pos.Line == s.line+1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
