package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SentErr enforces the sentinel-error contract internal/errs documents:
// layers wrap sentinels with fmt.Errorf("...: %w", errs.ErrX) and callers
// classify with errors.Is. Two failure modes break the contract silently:
//
//   - `err == errs.ErrOverloaded` works until any layer adds wrapping, then
//     admission-control classification quietly stops matching.
//   - fmt.Errorf("...: %v", err) stringifies the chain: errors.Is on the
//     result no longer sees the sentinel at all.
//
// Both are invisible in review once the code is a few layers away from the
// comparison site, which is exactly when they bite.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "sentinel errors are classified with errors.Is (never ==/!=) and wrapped with %w (never %v)",
	Run:  runSentErr,
}

func runSentErr(pass *Pass) error {
	if !PathHasPrefix(pass.Path, "hwstar") {
		return nil
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n)
				}
			case *ast.CallExpr:
				if obj := pass.Callee(n); obj != nil && IsPkgFunc(obj, "fmt", "Errorf") {
					checkErrorfWrap(pass, n, errIface)
				}
			}
			return true
		})
	}
	return nil
}

// isSentinel reports whether e refers to a package-level exported error
// variable named Err* — internal/errs sentinels, their façade re-exports,
// and any future sentinel following the convention.
func isSentinel(pass *Pass, e ast.Expr) (types.Object, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, false
	}
	obj := pass.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !v.Exported() || !strings.HasPrefix(v.Name(), "Err") {
		return nil, false
	}
	// Package-level, of interface type error.
	if v.Parent() != v.Pkg().Scope() {
		return nil, false
	}
	if named, ok := types.Unalias(v.Type()).(*types.Named); !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil, false
	}
	return v, true
}

func checkSentinelCompare(pass *Pass, b *ast.BinaryExpr) {
	for _, side := range []ast.Expr{b.X, b.Y} {
		if obj, ok := isSentinel(pass, side); ok {
			op := "=="
			if b.Op == token.NEQ {
				op = "!="
			}
			pass.Reportf(b.Pos(),
				"%s compared with %s: breaks once any layer wraps the sentinel — use errors.Is(err, %s)",
				obj.Name(), op, obj.Name())
			return
		}
	}
}

// checkErrorfWrap maps fmt.Errorf verbs to arguments and reports error-typed
// arguments formatted with %v/%s: the error chain is flattened to a string
// and errors.Is stops matching.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr, errIface *types.Interface) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := formatVerbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			return
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		t := pass.TypeOf(call.Args[argIdx])
		if t == nil {
			continue
		}
		if types.Implements(t, errIface) || types.Implements(types.NewPointer(t), errIface) {
			pass.Reportf(call.Args[argIdx].Pos(),
				"error formatted with %%%c flattens the chain and hides sentinels from errors.Is — wrap with %%w", verb)
		}
	}
}

// formatVerbs returns one entry per argument the format string consumes:
// the verb rune, or '*' for a width/precision argument. It reports ok=false
// for explicit argument indexes (%[1]d), which it does not model.
func formatVerbs(format string) ([]rune, bool) {
	var verbs []rune
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
	scan:
		for i < len(format) {
			c := format[i]
			switch {
			case c == '%':
				i++
				break scan
			case strings.ContainsRune("+-# 0.", rune(c)) || c >= '0' && c <= '9':
				i++
			case c == '*':
				verbs = append(verbs, '*')
				i++
			case c == '[':
				return nil, false
			default:
				verbs = append(verbs, rune(c))
				i++
				break scan
			}
		}
	}
	return verbs, true
}
