package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a per-package lock-acquisition order graph from every
// sync.Mutex / sync.RWMutex call site and reports any cycle in it. This is
// McKenney's classic rule made structural: a package may nest its locks any
// way it likes, as long as the nesting induces a partial order — the moment
// two lock classes are each acquired while the other is held (on any pair
// of code paths, even ones never yet executed together), a deadlock is
// constructible, and no test is guaranteed to find it before production
// does. The serving tiers stacked since PR 5 (the router's breaker locks,
// serve's intake and core-pool locks, the mem governor's
// reservation/governor pair, the store's checkpoint/state pair) each hold
// such an order by hand today; this analyzer holds it by machine.
//
// Locks are identified by class, not instance: the field path
// "Owner.field" (Reservation.mu, Governor.mu) or the package-level
// variable name. Acquisitions are tracked lexically within each function
// (a deferred Unlock holds to function end), and one level of the package
// call graph is folded in: calling a same-package function that may
// acquire B while holding A draws the edge A -> B just as a direct nested
// Lock does. Locks of the same class are never edged to themselves —
// instance identity is beyond static scope, and same-class hierarchies
// (two breakers, two shards) are ordered by the caller.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the per-package lock-acquisition graph (serve/shard/mem/store/frontend) is cycle-free",
	Run:  runLockOrder,
}

var lockOrderScope = []string{
	"hwstar/internal/serve",
	"hwstar/internal/shard",
	"hwstar/internal/mem",
	"hwstar/internal/store",
	"hwstar/internal/frontend",
}

// lockEvent is one mutex operation or same-package call, in lexical order.
type lockEvent struct {
	pos token.Pos
	// exactly one of:
	lock   string       // key acquired
	unlock string       // key released (non-deferred only; a deferred release holds to end)
	callee types.Object // same-package function called
}

// lockEdge records the earliest witness of "to acquired while from held".
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // callee name when the edge crosses a call, else ""
}

func runLockOrder(pass *Pass) error {
	inScope := false
	for _, p := range lockOrderScope {
		if PathHasPrefix(pass.Path, p) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	bodies := collectFuncBodies(pass)

	// Per analysis unit (function declaration or function literal): the
	// lexical event stream.
	var units []lockUnit
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			collectLockUnits(pass, fd.Body, pass.Info.Defs[fd.Name], &units)
		}
	}

	// May-acquire sets: fixed point over the package call graph.
	direct := map[types.Object]map[string]bool{}
	calls := map[types.Object][]types.Object{}
	for _, u := range units {
		if u.owner == nil {
			continue // literals run on their own schedule; not call-graph nodes
		}
		if direct[u.owner] == nil {
			direct[u.owner] = map[string]bool{}
		}
		for _, ev := range u.events {
			if ev.lock != "" {
				direct[u.owner][ev.lock] = true
			}
			if ev.callee != nil {
				if _, known := bodies[ev.callee]; known {
					calls[u.owner] = append(calls[u.owner], ev.callee)
				}
			}
		}
	}
	mayAcquire := map[types.Object]map[string]bool{}
	for fn, d := range direct {
		mayAcquire[fn] = map[string]bool{}
		for k := range d {
			mayAcquire[fn][k] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range calls {
			if mayAcquire[fn] == nil {
				mayAcquire[fn] = map[string]bool{}
			}
			for _, g := range cs {
				for k := range mayAcquire[g] {
					if !mayAcquire[fn][k] {
						mayAcquire[fn][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge construction: replay each unit's lexical stream.
	edges := map[[2]string]lockEdge{}
	addEdge := func(from, to string, pos token.Pos, via string) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if e, ok := edges[key]; !ok || pos < e.pos {
			edges[key] = lockEdge{from: from, to: to, pos: pos, via: via}
		}
	}
	for _, u := range units {
		held := map[string]bool{}
		for _, ev := range u.events {
			switch {
			case ev.lock != "":
				for h := range held {
					addEdge(h, ev.lock, ev.pos, "")
				}
				held[ev.lock] = true
			case ev.unlock != "":
				delete(held, ev.unlock)
			case ev.callee != nil:
				if len(held) == 0 {
					continue
				}
				for k := range mayAcquire[ev.callee] {
					for h := range held {
						addEdge(h, k, ev.pos, ev.callee.Name())
					}
				}
			}
		}
	}

	// Cycle detection: a node set where every node reaches every other
	// (strongly connected component of size >= 2) is a constructible
	// deadlock. Report every edge inside such a component.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	comp := sccOf(nodes, adj)
	var bad []lockEdge
	for _, e := range edges {
		if comp[e.from] == comp[e.to] && compSize(comp, e.from) > 1 {
			bad = append(bad, e)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].pos < bad[j].pos })
	for _, e := range bad {
		cycle := cycleString(comp, e.from)
		if e.via != "" {
			pass.Reportf(e.pos,
				"calling %s (which may acquire %s) while holding %s completes a lock-order cycle (%s): a deadlock is constructible",
				e.via, e.to, e.from, cycle)
		} else {
			pass.Reportf(e.pos,
				"acquiring %s while holding %s completes a lock-order cycle (%s): a deadlock is constructible",
				e.to, e.from, cycle)
		}
	}
	return nil
}

// collectLockUnits walks one function body, appending its lexical event
// stream; nested function literals become their own units (their bodies run
// on an unknown schedule), except literals called by a defer, whose lock
// operations belong to the enclosing function's cleanup.
func collectLockUnits(pass *Pass, body *ast.BlockStmt, owner types.Object, out *[]lockUnit) {
	var events []lockEvent
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(m.Call, true)
				}
				return false
			case *ast.FuncLit:
				collectLockUnits(pass, m.Body, nil, out)
				return false
			case *ast.CallExpr:
				if key, op, ok := mutexOp(pass, m); ok {
					switch op {
					case "lock":
						events = append(events, lockEvent{pos: m.Pos(), lock: key})
					case "unlock":
						if !inDefer {
							events = append(events, lockEvent{pos: m.Pos(), unlock: key})
						}
						// A deferred unlock releases at return: it never
						// shrinks the held set mid-body, so it is no event.
					}
					return true
				}
				if obj := pass.Callee(m); obj != nil {
					if fn, ok := obj.(*types.Func); ok && fn.Pkg() == pass.Pkg {
						events = append(events, lockEvent{pos: m.Pos(), callee: obj})
					}
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	*out = append(*out, lockUnit{owner: owner, events: events})
}

// lockUnit is one analyzed function body: a declaration (owner set, a
// call-graph node) or a literal (owner nil, its locks still edge-checked).
type lockUnit struct {
	owner  types.Object
	events []lockEvent
}

// mutexOp classifies a call as a lock or unlock of an identifiable mutex
// class, returning the class key. Only sync.Mutex / sync.RWMutex methods
// qualify; locks named only by a local variable have no class and are
// skipped.
func mutexOp(pass *Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", false
	}
	fn, isFn := pass.Callee(call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	key = lockClass(pass, sel.X)
	if key == "" {
		return "", "", false
	}
	return key, op, true
}

// lockClass names the lock a receiver expression denotes: "Owner.field" for
// struct-field mutexes (including a promoted embedded mutex, which is named
// by the owner type alone), or "pkgvar <name>" for package-level mutex
// variables. Locals return "".
func lockClass(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj := pass.ObjectOf(e.Sel)
		if obj == nil {
			return ""
		}
		if owner := namedTypeName(pass.TypeOf(e.X)); owner != "" {
			return owner + "." + obj.Name()
		}
		return ""
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "pkgvar " + v.Name()
		}
		// A receiver whose type embeds the mutex: s.Lock() on `type S
		// struct{ sync.Mutex }` — the class is the embedding type.
		if owner := namedTypeName(obj.Type()); owner != "" {
			return owner + ".(embedded)"
		}
		return ""
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockClass(pass, e.X)
		}
	}
	return ""
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// sccOf computes strongly connected components (iterative Tarjan) and
// returns a representative id per node.
func sccOf(nodes map[string]bool, adj map[string][]string) map[string]int {
	sorted := make([]string, 0, len(nodes))
	for n := range nodes {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, vs := range adj {
		sort.Strings(vs)
	}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, compID := 0, 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				if w == v {
					break
				}
			}
			compID++
		}
	}
	for _, v := range sorted {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return comp
}

func compSize(comp map[string]int, node string) int {
	n := 0
	for _, c := range comp {
		if c == comp[node] {
			n++
		}
	}
	return n
}

// cycleString renders the component containing node as "A -> B -> A",
// members sorted for determinism.
func cycleString(comp map[string]int, node string) string {
	var members []string
	for n, c := range comp {
		if c == comp[node] {
			members = append(members, n)
		}
	}
	sort.Strings(members)
	return strings.Join(members, " -> ") + " -> " + members[0]
}
