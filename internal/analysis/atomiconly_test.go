package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestAtomicOnly(t *testing.T) {
	analysistest.Run(t, "testdata/atomiconly", "hwstar/internal/vecexec", analysis.AtomicOnly)
}
