package analysis

import (
	"go/ast"
	"go/types"
)

// NoLockCopy reports copies of mutex-bearing values. hwstar's hot shared
// state — the metrics registry, the memory governor, tracer rings, the
// scheduler — guards itself with embedded sync primitives; copying such a
// value forks the lock from the state it guards, and the copy "works" until
// two goroutines disagree about which lock covers which data. go vet's
// copylocks catches many of these, but this check runs in the same gate as
// the house-rule analyzers and extends to sync/atomic value types, whose
// copies tear the same way.
//
// Flagged: by-value receivers and parameters of lock-bearing types, plain
// assignments that copy a lock-bearing value (including *p dereferences),
// and range clauses whose element copies one. Construction via composite
// literal and pointer use are fine.
var NoLockCopy = &Analyzer{
	Name: "nolockcopy",
	Doc:  "values of mutex-bearing types (metrics registry, governor, ...) are never copied",
	Run:  runNoLockCopy,
}

var lockPkgs = map[string]bool{"sync": true, "sync/atomic": true}

type lockCache map[types.Type]bool

// lockBearing reports whether a value of type t transitively contains a
// sync or sync/atomic primitive by value.
func (c lockCache) lockBearing(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if v, ok := c[t]; ok {
		return v
	}
	c[t] = false // cut recursion; self-referential structs do so via pointers
	v := c.lockBearing1(t)
	c[t] = v
	return v
}

func (c lockCache) lockBearing1(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && lockPkgs[obj.Pkg().Path()] {
			// Every struct type in sync and sync/atomic is copy-hostile
			// (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map, atomic.*).
			_, isStruct := t.Underlying().(*types.Struct)
			return isStruct
		}
		return c.lockBearing(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.lockBearing(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.lockBearing(t.Elem())
	}
	return false
}

func runNoLockCopy(pass *Pass) error {
	if !PathHasPrefix(pass.Path, "hwstar") {
		return nil
	}
	cache := lockCache{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, cache, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, cache, nil, n.Type)
			case *ast.AssignStmt:
				// `_ = v` discards the value: no copy survives.
				if allBlank(n.Lhs) {
					return true
				}
				for _, r := range n.Rhs {
					checkCopyExpr(pass, cache, r)
				}
			case *ast.ValueSpec:
				for _, r := range n.Values {
					checkCopyExpr(pass, cache, r)
				}
			case *ast.RangeStmt:
				checkRangeCopy(pass, cache, n)
			}
			return true
		})
	}
	return nil
}

func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

func checkFuncSig(pass *Pass, cache lockCache, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr || t == nil {
				continue
			}
			if cache.lockBearing(t) {
				pass.Reportf(field.Pos(),
					"by-value %s of type %s copies the locks it contains: use a pointer", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
}

// checkCopyExpr reports value-copying expressions: a dereference, variable,
// selector, or index of lock-bearing type on the right of an assignment.
// Composite literals (construction) and calls (the callee's concern) pass.
func checkCopyExpr(pass *Pass, cache lockCache, e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypeOf(e)
	if t == nil {
		return
	}
	if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		return
	}
	if cache.lockBearing(t) {
		pass.Reportf(e.Pos(),
			"assignment copies lock-bearing value of type %s: the copy's locks no longer guard the original's state",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

func checkRangeCopy(pass *Pass, cache lockCache, r *ast.RangeStmt) {
	if r.Value == nil {
		return
	}
	t := pass.TypeOf(r.Value)
	if t == nil {
		return
	}
	if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		return
	}
	if cache.lockBearing(t) {
		pass.Reportf(r.Value.Pos(),
			"range copies lock-bearing value of type %s per iteration: range over indexes or pointers",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}
