// Testdata for the hotalloc analyzer, judged as hwstar/internal/join — a
// morsel-processing package where per-iteration interface boxing is banned.
package join

import (
	"errors"
	"fmt"
	"strconv"
)

func TaskNames(n int) []string {
	names := make([]string, 0, n)
	for p := 0; p < n; p++ {
		names = append(names, fmt.Sprintf("join-p%d", p)) // want "Sprintf boxes its arguments"
	}
	return names
}

// HoistedOK is the fix: strconv builds strings without boxing.
func HoistedOK(n int) []string {
	names := make([]string, 0, n)
	for p := 0; p < n; p++ {
		names = append(names, "join-p"+strconv.Itoa(p))
	}
	return names
}

func NestedLoops(a, b int) int {
	total := 0
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			total += len(fmt.Sprint(i, j)) // want "Sprint boxes its arguments"
		}
	}
	return total
}

func RangeLoop(rows []int64) []string {
	out := make([]string, 0, len(rows))
	for i, r := range rows {
		out = append(out, fmt.Sprintf("%d=%d", i, r)) // want "Sprintf boxes its arguments"
	}
	return out
}

// ErrorPathOK: a return terminates the iteration, so the format runs at
// most once per call.
func ErrorPathOK(rows []int64) error {
	for i, r := range rows {
		if r < 0 {
			return fmt.Errorf("row %d negative: %w", i, errors.New("bad"))
		}
	}
	return nil
}

// PanicPathOK: same for panic.
func PanicPathOK(rows []int64) {
	for i, r := range rows {
		if r < 0 {
			panic(fmt.Sprintf("row %d negative", i))
		}
	}
}

// OutsideLoopOK: once per call is not a hot path.
func OutsideLoopOK(n int) string {
	return fmt.Sprintf("fanout-%d", n)
}

// TaskBodyOK: a literal built per iteration runs on its own schedule (once
// per task), not the loop's; its own loops are checked independently.
func TaskBodyOK(n int) []func() string {
	fns := make([]func() string, 0, n)
	for p := 0; p < n; p++ {
		p := p
		fns = append(fns, func() string {
			return fmt.Sprint(p)
		})
	}
	return fns
}

// PreboxedOK: forwarding an existing []any slice boxes nothing per call.
func PreboxedOK(rows []any) int {
	n := 0
	for range rows {
		n += len(fmt.Sprintln(rows...))
	}
	return n
}
