// Testdata for the hotalloc analyzer, judged as hwstar/internal/serve — in
// scope since the vectorized scan made the serving layer's batch loops hot.
// The cases mirror the real call sites: per-request span attributes and
// retry annotations inside loops.
package serve

import (
	"fmt"
	"strconv"

	"hwstar/internal/trace"
)

type pending struct {
	span *trace.Span
}

func AttrPerRequest(live []*pending) {
	for _, p := range live {
		p.span.SetAttr("batch_size", fmt.Sprint(len(live))) // want "Sprint boxes its arguments"
	}
}

// AttrHoistedOK is the fix: format once, outside the loop.
func AttrHoistedOK(live []*pending) {
	batchSize := strconv.Itoa(len(live))
	for _, p := range live {
		p.span.SetAttr("batch_size", batchSize)
	}
}

func AnnotatePerAttempt(sp *trace.Span, attempts int) {
	for a := 0; a < attempts; a++ {
		sp.Annotate("attempt %d failed", a+1) // want "Annotate boxes its arguments"
	}
}

// EventOK is the fix: Span.Event takes a pre-built string, assembled with
// strconv — nothing boxes.
func EventOK(sp *trace.Span, attempts int) {
	for a := 0; a < attempts; a++ {
		sp.Event("attempt " + strconv.Itoa(a+1) + " failed")
	}
}
