// Testdata for the atomiconly analyzer, judged as hwstar/internal/vecexec —
// the controller's hot-path counters are exactly where a torn plain read
// becomes a wrong tuning decision with no crash to point at it.
package vecexec

import "sync/atomic"

type Controller struct {
	hits int64
	miss int64        // plain-only everywhere: fine
	knob atomic.Int64 // typed atomic: mixed access is unrepresentable
}

func (c *Controller) Hit() { atomic.AddInt64(&c.hits, 1) }

// Snapshot reads the atomically-written counter plainly: the silent race.
func (c *Controller) Snapshot() int64 {
	return c.hits // want "mixed atomic/plain access"
}

func (c *Controller) SnapshotOK() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *Controller) Miss() { c.miss++ }

func (c *Controller) Tune(v int64) { c.knob.Store(v) }

// NewController sets the initial value through a composite-literal key —
// before publication, exempt by rule.
func NewController() *Controller {
	return &Controller{hits: 0}
}

var total int64

func Add(n int64) { atomic.AddInt64(&total, n) }

func Total() int64 { return atomic.LoadInt64(&total) }

// Reset writes the package counter plainly beside atomic adds.
func Reset() {
	total = 0 // want "mixed atomic/plain access"
}

// Swap via CompareAndSwap keeps every access atomic.
func Drain() int64 {
	for {
		v := atomic.LoadInt64(&total)
		if atomic.CompareAndSwapInt64(&total, v, 0) {
			return v
		}
	}
}
