// Testdata for the ctxfirst analyzer, judged as hwstar/internal/serve
// (library code: context.Background is banned, exported signatures are
// context-first).
package serve

import "context"

// Good is the house shape: ctx first, threaded onward.
func Good(ctx context.Context, n int) error {
	return work(ctx, n)
}

func BadOrder(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	return work(ctx, n)
}

func BadOrderVariadic(name string, n int, ctx context.Context, rest ...int) error { // want "context.Context must be the first parameter"
	return work(ctx, n)
}

// helper is unexported: signature shape is its caller's business.
func helper(n int, ctx context.Context) error {
	return work(ctx, n)
}

type Engine struct{}

func (e *Engine) BadMethod(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	return work(ctx, n)
}

func (e *Engine) GoodMethod(ctx context.Context, n int) error {
	return work(ctx, n)
}

func MakeRoot() context.Context {
	return context.Background() // want "context.Background in library code"
}

func Todo() error {
	ctx := context.TODO() // want "context.TODO in library code"
	return work(ctx, 0)
}

// Detach is the sanctioned way to outlive a caller: values survive, only
// cancellation is severed.
func Detach(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

// Shim shows the reviewed-exemption escape hatch.
func Shim() error {
	return work(context.Background(), 0) //hwlint:ignore ctxfirst reviewed: testdata exercises the documented no-context bridge shape
}

func work(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}
