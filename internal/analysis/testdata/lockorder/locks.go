// Testdata for the lockorder analyzer, judged as hwstar/internal/serve —
// one of the lock-graph packages. Two lock classes acquired in both orders
// on any pair of paths is a constructible deadlock.
package serve

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ab nests A.mu -> B.mu; ba nests B.mu -> A.mu. Together: a cycle. The
// deferred unlocks hold to function end, so both locks overlap.
func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want "acquiring B.mu while holding A.mu completes a lock-order cycle"
	b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "acquiring A.mu while holding B.mu completes a lock-order cycle"
	a.mu.Unlock()
}

// The call-graph edge: cThenD never touches D.mu directly, but lockD may
// acquire it, so calling lockD while holding C.mu draws C.mu -> D.mu —
// which dThenC's direct nesting then closes into a cycle.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
}

func cThenD(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD(d) // want `calling lockD \(which may acquire D.mu\) while holding C.mu`
}

func dThenC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock() // want "acquiring C.mu while holding D.mu completes a lock-order cycle"
	c.mu.Unlock()
}

// The house shape: Reservation.mu -> Governor.mu, one direction
// everywhere. A consistent partial order draws edges but no cycle.
type Governor struct{ mu sync.Mutex }
type Reservation struct {
	mu sync.Mutex
	g  *Governor
}

func (r *Reservation) Charge() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.g.mu.Lock()
	defer r.g.mu.Unlock()
}

func (r *Reservation) Release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.g.mu.Lock()
	defer r.g.mu.Unlock()
}

// Sequential, not nested: the unlock releases before the next acquire, so
// no edge is drawn in either order.
func sequential(a *A, b *B) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// Same class twice (two shards, two breakers): instance identity is
// beyond static scope, so no self-edge and no report.
func twoOfAKind(x, y *A) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	y.mu.Unlock()
}
