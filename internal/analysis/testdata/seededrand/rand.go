// Testdata for the seededrand analyzer, judged as hwstar/internal/sched —
// a determinism-critical package where randomness must thread a seed.
package sched

import (
	"math/rand"
	"time"
)

func GlobalDraw() int {
	return rand.Intn(10) // want "global math/rand"
}

func GlobalFloat() float64 {
	return rand.Float64() // want "global math/rand"
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand"
}

func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from time.Now"
}

// Laundered hides the time seed behind a local: the PR 2/3 bug shape, where
// the seed variable is computed lines before the source is built.
func Laundered() *rand.Rand {
	seed := time.Now().UnixNano()
	seed ^= 0x5DEECE66D
	return rand.New(rand.NewSource(seed)) // want "seeded from time.Now"
}

// Threaded is the house shape: the seed is a parameter, replay works.
func Threaded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func ZipfOK(seed int64) *rand.Zipf {
	rng := rand.New(rand.NewSource(seed))
	return rand.NewZipf(rng, 1.1, 1, 100)
}

// MethodsOK draws from a threaded generator, which is always fine: the
// rule is about *sources*, not use.
func MethodsOK(rng *rand.Rand) int {
	return rng.Intn(10)
}
