// Testdata for the nolockcopy analyzer: mutex-bearing values are never
// copied.
package metrics

import (
	"sync"
	"sync/atomic"
)

type registry struct {
	mu     sync.Mutex
	counts map[string]int64
}

// nested embeds a lock two levels down; the check is transitive.
type nested struct {
	inner registry
	name  string
}

type gauge struct {
	v atomic.Int64
}

func ByValueParam(r registry) int { // want "by-value parameter"
	return len(r.counts)
}

func (r registry) ByValueReceiver() int { // want "by-value receiver"
	return len(r.counts)
}

func NestedParam(n nested) string { // want "by-value parameter"
	return n.name
}

func AtomicParam(g gauge) int64 { // want "by-value parameter"
	return g.v.Load()
}

func Deref(p *registry) int {
	r := *p // want "assignment copies lock-bearing value"
	return len(r.counts)
}

func RangeCopy(rs []registry) int {
	n := 0
	for _, r := range rs { // want "range copies lock-bearing value"
		n += len(r.counts)
	}
	return n
}

// PointerOK: pointers share the lock instead of copying it.
func PointerOK(p *registry) *registry {
	q := p
	return q
}

// ConstructOK: composite literals build the value in place.
func ConstructOK() *registry {
	r := registry{counts: map[string]int64{}}
	return &r
}

// RangeIndexOK: ranging over indexes touches no value copy.
func RangeIndexOK(rs []registry) int {
	n := 0
	for i := range rs {
		n += len(rs[i].counts)
	}
	return n
}

// PlainStructOK: no locks anywhere, copy freely.
type point struct{ x, y int }

func PlainStructOK(p point) point {
	q := p
	return q
}
