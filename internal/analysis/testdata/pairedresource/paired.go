// Testdata for the pairedresource analyzer: started spans reach End,
// granted reservations reach Release, on every path.
package serve

import (
	"errors"

	"hwstar/internal/mem"
	"hwstar/internal/trace"
)

func LeakSpan(t *trace.Tracer) {
	sp := t.Start("leak") // want `sp acquired here never reaches Span.End`
	sp.AddCycles(1)
}

func LeakChild(parent *trace.Span) {
	c := parent.Child("phase") // want `c acquired here never reaches Span.End`
	c.AddBytes(64)
}

func EarlyReturn(t *trace.Tracer, fail bool) error {
	sp := t.Start("early") // want `does not reach Span.End on the early-return path`
	if fail {
		return errors.New("fail")
	}
	sp.End()
	return nil
}

// DeferredOK is the fix the analyzer suggests: defer pairs every path.
func DeferredOK(t *trace.Tracer, fail bool) error {
	sp := t.Start("ok")
	defer sp.End()
	if fail {
		return errors.New("fail")
	}
	return nil
}

// DeferredClosureOK: a release inside a deferred literal still pairs.
func DeferredClosureOK(t *trace.Tracer, fail bool) error {
	sp := t.Start("ok")
	defer func() {
		sp.SetAttr("status", "done")
		sp.End()
	}()
	if fail {
		return errors.New("fail")
	}
	return nil
}

// LinearOK: no exit between acquisition and release, so no defer needed.
func LinearOK(t *trace.Tracer) {
	sp := t.Start("linear")
	sp.AddCycles(2)
	sp.End()
}

// EscapeReturnOK: ownership transfers to the caller.
func EscapeReturnOK(t *trace.Tracer) *trace.Span {
	sp := t.Start("escapes")
	return sp
}

// EscapeStoreOK: ownership transfers to the struct that outlives the call.
type holder struct{ sp *trace.Span }

func EscapeStoreOK(t *trace.Tracer, h *holder) {
	sp := t.Start("stored")
	h.sp = sp
}

func LeakReservation(g *mem.Governor) {
	r, err := g.Reserve(1 << 20) // want `r acquired here never reaches Reservation.Release`
	if err != nil {
		return
	}
	_ = r.Charge("agg-table", 0, 4096)
}

func EarlyReturnReservation(g *mem.Governor) error {
	r, err := g.Reserve(1 << 20) // want `does not reach Reservation.Release on the early-return path`
	if err != nil {
		return err
	}
	if err := r.Charge("join-build", 0, 4096); err != nil {
		return err
	}
	r.Release()
	return nil
}

// DeferredReservationOK: nil-safe Release deferred immediately covers the
// error path too.
func DeferredReservationOK(g *mem.Governor) error {
	r, err := g.Reserve(1 << 20)
	if err != nil {
		return err
	}
	defer r.Release()
	return r.Charge("join-build", 0, 4096)
}
