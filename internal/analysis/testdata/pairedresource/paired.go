// Testdata for the pairedresource analyzer: started spans reach End,
// granted reservations reach Release, and segment handles reach Close,
// on every path.
package serve

import (
	"errors"

	"hwstar/internal/mem"
	"hwstar/internal/store"
	"hwstar/internal/table"
	"hwstar/internal/trace"
)

func LeakSpan(t *trace.Tracer) {
	sp := t.Start("leak") // want `sp acquired here never reaches Span.End`
	sp.AddCycles(1)
}

func LeakChild(parent *trace.Span) {
	c := parent.Child("phase") // want `c acquired here never reaches Span.End`
	c.AddBytes(64)
}

func EarlyReturn(t *trace.Tracer, fail bool) error {
	sp := t.Start("early") // want `does not reach Span.End on the early-return path`
	if fail {
		return errors.New("fail")
	}
	sp.End()
	return nil
}

// DeferredOK is the fix the analyzer suggests: defer pairs every path.
func DeferredOK(t *trace.Tracer, fail bool) error {
	sp := t.Start("ok")
	defer sp.End()
	if fail {
		return errors.New("fail")
	}
	return nil
}

// DeferredClosureOK: a release inside a deferred literal still pairs.
func DeferredClosureOK(t *trace.Tracer, fail bool) error {
	sp := t.Start("ok")
	defer func() {
		sp.SetAttr("status", "done")
		sp.End()
	}()
	if fail {
		return errors.New("fail")
	}
	return nil
}

// LinearOK: no exit between acquisition and release, so no defer needed.
func LinearOK(t *trace.Tracer) {
	sp := t.Start("linear")
	sp.AddCycles(2)
	sp.End()
}

// EscapeReturnOK: ownership transfers to the caller.
func EscapeReturnOK(t *trace.Tracer) *trace.Span {
	sp := t.Start("escapes")
	return sp
}

// EscapeStoreOK: ownership transfers to the struct that outlives the call.
type holder struct{ sp *trace.Span }

func EscapeStoreOK(t *trace.Tracer, h *holder) {
	sp := t.Start("stored")
	h.sp = sp
}

func LeakReservation(g *mem.Governor) {
	r, err := g.Reserve(1 << 20) // want `r acquired here never reaches Reservation.Release`
	if err != nil {
		return
	}
	_ = r.Charge("agg-table", 0, 4096)
}

func EarlyReturnReservation(g *mem.Governor) error {
	r, err := g.Reserve(1 << 20) // want `does not reach Reservation.Release on the early-return path`
	if err != nil {
		return err
	}
	if err := r.Charge("join-build", 0, 4096); err != nil {
		return err
	}
	r.Release()
	return nil
}

// DeferredReservationOK: nil-safe Release deferred immediately covers the
// error path too.
func DeferredReservationOK(g *mem.Governor) error {
	r, err := g.Reserve(1 << 20)
	if err != nil {
		return err
	}
	defer r.Release()
	return r.Charge("join-build", 0, 4096)
}

func LeakSegmentWriter(s *store.Store, t *table.Table) {
	w, err := s.CreateSegment("facts", 1) // want `w acquired here never reaches SegmentWriter.Close`
	if err != nil {
		return
	}
	_ = w.WriteTable(t)
}

func EarlyReturnSegmentWriter(s *store.Store, t *table.Table) error {
	w, err := s.CreateSegment("facts", 1) // want `does not reach SegmentWriter.Close on the early-return path`
	if err != nil {
		return err
	}
	if err := w.WriteTable(t); err != nil {
		return err
	}
	w.Close()
	return nil
}

// DeferredSegmentWriterOK is the canonical shape: Close deferred right after
// acquisition (idempotent after Commit), Commit on the success path.
func DeferredSegmentWriterOK(s *store.Store, t *table.Table) error {
	w, err := s.CreateSegment("facts", 1)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := w.WriteTable(t); err != nil {
		return err
	}
	return w.Commit()
}

func LeakSegmentReader(path string) {
	r, err := store.OpenSegment(path) // want `r acquired here never reaches SegmentReader.Close`
	if err != nil {
		return
	}
	_, _ = r.ReadTable()
}

// DeferredSegmentReaderOK pairs the open with a deferred Close.
func DeferredSegmentReaderOK(path string) (*table.Table, error) {
	r, err := store.OpenSegment(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.ReadTable()
}

// EscapeSegmentWriterOK: ownership transfers to the caller.
func EscapeSegmentWriterOK(s *store.Store) (*store.SegmentWriter, error) {
	w, err := s.CreateSegment("facts", 2)
	if err != nil {
		return nil, err
	}
	return w, nil
}
