// The PR 9 handles: routers and servers own goroutine crews, timers pin
// runtime state — each must reach Close/Stop like any other paired
// resource. Judged as hwstar/internal/serve, so serve.Server is the one
// pair exempt here (the implementor package wires its own internals).
package serve

import (
	"context"
	"time"

	"hwstar/internal/hw"
	"hwstar/internal/serve"
	"hwstar/internal/shard"
)

func LeakRouter(ctx context.Context, m *hw.Machine) error {
	r, err := shard.New(ctx, m, shard.Options{Shards: 2}) // want `r acquired here never reaches Router.Close`
	if err != nil {
		return err
	}
	_ = r.Register("t", nil)
	return nil
}

// GuardedOK: the early return inside the constructor's own err guard is
// the acquisition-failure path — the handle was never minted, nothing
// leaks. The Close at the end pairs the success path.
func GuardedOK(ctx context.Context, m *hw.Machine) error {
	r, err := shard.New(ctx, m, shard.Options{Shards: 2})
	if err != nil {
		return err
	}
	if err := r.Register("t", nil); err != nil {
		r.Close()
		return err
	}
	return r.Close()
}

// EarlyReturnRouter: a return between acquisition and the late Close that
// is NOT the err guard does leak.
func EarlyReturnRouter(ctx context.Context, m *hw.Machine, skip bool) error {
	r, err := shard.New(ctx, m, shard.Options{Shards: 2}) // want `does not reach Router.Close on the early-return path`
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return r.Close()
}

func DeferredRouterOK(ctx context.Context, m *hw.Machine, skip bool) error {
	r, err := shard.New(ctx, m, shard.Options{Shards: 2})
	if err != nil {
		return err
	}
	defer r.Close()
	if skip {
		return nil
	}
	return r.Register("t", nil)
}

// LeakTicker: the hedged-dispatch shape before its fix — an un-Stopped
// ticker fires forever.
func LeakTicker(d time.Duration) {
	t := time.NewTicker(d) // want `t acquired here never reaches Ticker.Stop`
	<-t.C
}

func TimerOK(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// ImplementorExempt: serve.Server is serve's own type; judged as serve,
// the package may wire its internals freely (no diagnostic).
func ImplementorExempt(m *hw.Machine) error {
	s, err := serve.New(m, serve.Options{})
	if err != nil {
		return err
	}
	_ = s
	return nil
}
