// Testdata for the commitproto analyzer, judged as hwstar/internal/store —
// the durable tier, where every byte headed for a committed name must take
// the write-temp, fsync, rename road, and the rename is the commit point.
package store

import "os"

// atomicWriteOK is the house protocol verbatim: temp sibling, write, sync,
// close, rename, directory sync. No diagnostics.
func atomicWriteOK(dir, final string, data []byte) error {
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeInPlace mutates the committed name directly: a crash mid-write
// tears a committed file.
func writeInPlace(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile writes in place"
}

func createInPlace(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create truncates the named file in place"
}

func truncateInPlace(path string) error {
	return os.Truncate(path, 0) // want "Truncate mutates a possibly-committed file in place"
}

func truncateHandle(f *os.File) error {
	return f.Truncate(0) // want "Truncate mutates a possibly-committed file in place"
}

// openCommitted opens a non-temp path writable: committed files are
// immutable.
func openCommitted(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644) // want "non-temp path for writing"
}

func appendCommitted(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644) // want "non-temp path for writing"
}

// openRead reads a committed file: always fine.
func openRead(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}

// renameCommitted renames a non-temp source, with no sync on either side:
// all three rules fire at once.
func renameCommitted(a, b string) error {
	return os.Rename(a, b) // want "source is not a temp path" "no fsync before" "no directory sync after"
}

// renameNoSync has a proper temp source but skips both syncs: the bytes
// and the directory entry are both volatile at the commit point.
func renameNoSync(tmpName, final string) error {
	return os.Rename(tmpName, final) // want "no fsync before" "no directory sync after"
}

// renameNoDirSync fsyncs the temp file but never the directory: the
// rename itself can vanish on power loss.
func renameNoDirSync(f *os.File, tmpName, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmpName, final) // want "no directory sync after"
}
