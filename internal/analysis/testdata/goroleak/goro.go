// Testdata for the goroleak analyzer, judged as hwstar/internal/shard —
// library code, where every goroutine must carry termination evidence.
package shard

import (
	"context"
	"sync"
	"time"
)

type Server struct {
	wg     sync.WaitGroup
	intake chan int
}

// Hedge is the PR 9 bug verbatim: the loser's send on an unbuffered
// channel parks forever once the winner returns.
func Hedge(work func() int) int {
	results := make(chan int)
	go func() { // want "no provable termination path"
		results <- work()
	}()
	go func() { // want "no provable termination path"
		results <- work()
	}()
	return <-results
}

// HedgeFixed is the PR 9 fix: buffer covers the sender count, so an
// abandoned sender deposits its result and exits.
func HedgeFixed(work func() int) int {
	results := make(chan int, 2)
	go func() {
		results <- work()
	}()
	go func() {
		results <- work()
	}()
	return <-results
}

// Run joins its workers through the WaitGroup: someone Waits.
func (s *Server) Run(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for v := range s.intake {
				_ = v
			}
		}()
	}
	s.wg.Wait()
}

// Watch terminates via ctx.Done() — the cancellation idiom.
func Watch(ctx context.Context, tick *time.Ticker) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()
}

// Close closes the intake, so ranging over it is a join-via-close signal.
func (s *Server) Close() { close(s.intake) }

func (s *Server) worker() {
	for v := range s.intake {
		_ = v
	}
}

// Spawn launches a named method: judged by worker's own body, which
// ranges over the package-closed intake.
func (s *Server) Spawn() { go s.worker() }

// SpawnAliased receives through a local alias of the closed channel —
// serve's dispatch shape (hiCh := s.intake).
func (s *Server) SpawnAliased() {
	go func() {
		in := s.intake
		for {
			v, ok := <-in
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// Spin is a leak: an infinite loop with no signal, no join, no close.
func Spin() {
	go func() { // want "no provable termination path"
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// BlockForever is a leak: a receive from a channel nobody closes.
func BlockForever(stop chan struct{}) {
	go func() { // want "no provable termination path"
		<-stop
	}()
}

// Bounded runs to completion: straight-line body, no loop, no blocking op.
func Bounded(log func(string)) {
	go func() {
		log("started")
	}()
}
