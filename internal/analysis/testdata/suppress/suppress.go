// Testdata for //hwlint:ignore handling, judged as hwstar/internal/serve so
// the ctxfirst background rule fires without a suppression. Checked
// programmatically by suppress_test.go (the malformed-suppression
// diagnostics land on comment lines, where a want comment cannot sit).
package serve

import "context"

func SameLine() context.Context {
	return context.Background() //hwlint:ignore ctxfirst reviewed: exercises the trailing-comment suppression
}

func LineAbove() context.Context {
	//hwlint:ignore ctxfirst reviewed: exercises the stand-alone suppression
	return context.Background()
}

func MissingReason() context.Context {
	//hwlint:ignore ctxfirst
	return context.Background()
}

func UnknownName() context.Context {
	//hwlint:ignore nosuchanalyzer reviewed: the name does not exist
	return context.Background()
}

func OtherAnalyzerName() context.Context {
	//hwlint:ignore seededrand reviewed: well-formed, but names an analyzer that did not fire here
	return context.Background()
}
