// Testdata for the senterr analyzer: sentinels classified with errors.Is,
// wrapped with %w.
package serve

import (
	"errors"
	"fmt"
	"io"

	"hwstar/internal/errs"
)

func CompareEq(err error) bool {
	return err == errs.ErrOverloaded // want "ErrOverloaded compared with =="
}

func CompareNeq(err error) bool {
	return err != errs.ErrClosed // want "ErrClosed compared with !="
}

func CompareFlipped(err error) bool {
	return errs.ErrDegraded == err // want "ErrDegraded compared with =="
}

// ClassifyOK is the contract: errors.Is survives wrapping.
func ClassifyOK(err error) bool {
	return errors.Is(err, errs.ErrTransient)
}

// NilOK: comparing to nil is not a sentinel comparison.
func NilOK(err error) bool {
	return err == nil
}

// EOFOK: io.EOF does not follow the Err* naming convention and is compared
// with == across the stdlib; the analyzer leaves it alone.
func EOFOK(err error) bool {
	return err == io.EOF
}

func WrapV(err error) error {
	return fmt.Errorf("serve: submit failed: %v", err) // want "formatted with %v"
}

func WrapS(err error) error {
	return fmt.Errorf("serve: submit failed: %s", err) // want "formatted with %s"
}

func WrapMixed(n int, err error) error {
	return fmt.Errorf("serve: %d requests dropped: %v", n, err) // want "formatted with %v"
}

// WrapOK is the contract: %w keeps the chain intact.
func WrapOK(err error) error {
	return fmt.Errorf("serve: submit failed: %w", err)
}

// NonErrorOK: %v on a non-error operand is ordinary formatting.
func NonErrorOK(n int) error {
	return fmt.Errorf("serve: bad worker count %v", n)
}

// WidthOK: width/precision stars consume arguments; the error is still
// found at the right position.
func WidthStar(width int, err error) error {
	return fmt.Errorf("serve: %*d %v", width, 7, err) // want "formatted with %v"
}
