package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
)

// TestEachAnalyzerFiresOnItsTestdata is the negative smoke: every analyzer
// in the registry must produce at least one diagnostic on its own testdata
// package. A lint gate fails open silently — an analyzer whose scope list
// rotted, whose registration was dropped, or whose detection logic broke
// reports nothing, and a clean CI run looks exactly like a working one.
// This test makes "reports nothing" a failure.
func TestEachAnalyzerFiresOnItsTestdata(t *testing.T) {
	// dir and judged-as import path per analyzer; the path puts the
	// testdata inside the analyzer's scope.
	suites := map[string]struct{ dir, asPath string }{
		"ctxfirst":       {"testdata/ctxfirst", "hwstar/internal/serve"},
		"seededrand":     {"testdata/seededrand", "hwstar/internal/sched"},
		"senterr":        {"testdata/senterr", "hwstar/internal/serve"},
		"pairedresource": {"testdata/pairedresource", "hwstar/internal/serve"},
		"nolockcopy":     {"testdata/nolockcopy", "hwstar/internal/metrics"},
		"hotalloc":       {"testdata/hotalloc", "hwstar/internal/join"},
		"goroleak":       {"testdata/goroleak", "hwstar/internal/shard"},
		"lockorder":      {"testdata/lockorder", "hwstar/internal/serve"},
		"atomiconly":     {"testdata/atomiconly", "hwstar/internal/vecexec"},
		"commitproto":    {"testdata/commitproto", "hwstar/internal/store"},
	}
	for _, a := range analysis.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			s, ok := suites[a.Name]
			if !ok {
				t.Fatalf("analyzer %s has no testdata suite registered in this smoke test", a.Name)
			}
			diags := runOn(t, s.dir, s.asPath, a)
			if len(diags) == 0 {
				t.Fatalf("analyzer %s produced no diagnostics on %s: the check is silently disabled", a.Name, s.dir)
			}
			for _, d := range diags {
				if d.Analyzer != a.Name {
					t.Fatalf("diagnostic attributed to %q, want %q", d.Analyzer, a.Name)
				}
			}
		})
	}
}
