package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, "testdata/ctxfirst", "hwstar/internal/serve", analysis.CtxFirst)
}

// TestCtxFirstDriverExemption: the experiment drivers own their root
// contexts, so the same file judged as internal/experiments keeps only the
// signature-order diagnostics.
func TestCtxFirstDriverExemption(t *testing.T) {
	diags := runOn(t, "testdata/ctxfirst", "hwstar/internal/experiments", analysis.CtxFirst)
	for _, d := range diags {
		if want := "context.Context must be the first parameter"; !contains(d.Message, want) {
			t.Errorf("unexpected diagnostic outside the order rule: %s", d)
		}
	}
	if len(diags) == 0 {
		t.Fatalf("expected signature-order diagnostics to survive the driver exemption")
	}
}
