package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PairedResource enforces hwstar's paired lifecycles, lostcancel-style:
// a trace.Span that is Started or Child-ed must reach End, a granted
// mem.Reservation must reach Release, and a store segment handle
// (SegmentWriter from CreateSegment, SegmentReader from OpenSegment) must
// reach Close. An un-Ended span corrupts the trace tree's attribution (PR
// 3's whole point); an unreleased reservation leaks budget until the
// governor wedges every later query into ErrMemoryPressure (PR 4's whole
// point); an un-Closed segment handle leaks a file descriptor — and for a
// writer, an orphaned temp file that recovery has to sweep (PR 7's whole
// point).
//
// The check is intraprocedural and deliberately conservative: a resource
// that escapes the function — returned, stored in a struct or slice,
// passed to another call — is assumed to transfer ownership and is skipped.
// For locals it reports two defects:
//
//   - no End/Release call at all, and
//   - a release that only happens late in the straight-line body while an
//     early `return` sits between acquisition and release: the error path
//     leaks. `defer` is the fix the message suggests.
var PairedResource = &Analyzer{
	Name: "pairedresource",
	Doc:  "trace.Span reaches End and mem.Reservation reaches Release on every path",
	Run:  runPairedResource,
}

type resourceKind struct {
	pkg, typ, release string
}

var pairedResources = []resourceKind{
	{"hwstar/internal/trace", "Span", "End"},
	{"hwstar/internal/mem", "Reservation", "Release"},
	{"hwstar/internal/store", "SegmentWriter", "Close"},
	{"hwstar/internal/store", "SegmentReader", "Close"},
	// The PR 9 handles: a Router owns reaper and hedge goroutines, a Server
	// owns its worker pool — an un-Closed one leaks the whole crew.
	{"hwstar/internal/shard", "Router", "Close"},
	{"hwstar/internal/serve", "Server", "Close"},
	// The stdlib pair behind the hedged-dispatch timer: an un-Stopped Timer
	// or Ticker pins its runtime timer (and for Ticker, fires forever).
	{"time", "Ticker", "Stop"},
	{"time", "Timer", "Stop"},
}

// resourceFor skips kinds implemented by the package under analysis: trace
// manipulates raw Spans freely, shard wires Router internals — but each is
// still held to the *other* packages' pairs.
func resourceFor(t types.Type, inPkg string) (resourceKind, bool) {
	for _, rk := range pairedResources {
		if rk.pkg == inPkg {
			continue
		}
		if NamedType(t, rk.pkg, rk.typ) {
			return rk, true
		}
	}
	return resourceKind{}, false
}

func runPairedResource(pass *Pass) error {
	if !PathHasPrefix(pass.Path, "hwstar") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPairedIn(pass, n.Body)
				}
			case *ast.FuncLit:
				checkPairedIn(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// creatingNames are the method and function names that mint a tracked
// resource; every other producer of a resource-typed value is a borrow.
var creatingNames = map[string]bool{
	"Start": true, "Child": true, "Reserve": true,
	"CreateSegment": true, "OpenSegment": true,
	// shard.New / serve.New mint a Router / Server; NewRouter is the
	// facade alias. The name filter is loose (every package has a New) —
	// the type filter in resourceFor does the real gating.
	"New": true, "NewRouter": true,
	"NewTicker": true, "NewTimer": true,
}

func isCreatingCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return creatingNames[fun.Sel.Name]
	case *ast.Ident:
		return creatingNames[fun.Name]
	}
	return false
}

type acquisition struct {
	obj  types.Object
	kind resourceKind
	pos  token.Pos
	// errObj is the error assigned alongside the resource, when the minting
	// call returns (T, error): a return inside that error's `!= nil` guard
	// is the acquisition-failure path, where the handle is nil and there is
	// nothing to release.
	errObj types.Object
}

// checkPairedIn analyzes one function body. Nested function literals are
// analyzed separately (runPairedResource visits them too); here they matter
// only as capture sites.
func checkPairedIn(pass *Pass, body *ast.BlockStmt) {
	// Find acquisitions: `v := expr` / `v, err := expr` where the assigned
	// value's static type is a tracked resource.
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		// Only *creating* calls acquire: Start/Child mint a span, Reserve
		// grants a reservation. A define from anything else (FromContext,
		// a getter, another variable) borrows a resource someone else owns.
		if len(as.Rhs) != 1 || !isCreatingCall(as.Rhs[0]) {
			return true
		}
		var errObj types.Object
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.ObjectOf(id); obj != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
					errObj = obj
				}
			}
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				continue
			}
			if kind, ok := resourceFor(obj.Type(), pass.Path); ok {
				acqs = append(acqs, acquisition{obj: obj, kind: kind, pos: id.Pos(), errObj: errObj})
			}
		}
		return true
	})
	for _, acq := range acqs {
		checkAcquisition(pass, body, acq)
	}
}

func checkAcquisition(pass *Pass, body *ast.BlockStmt, acq acquisition) {
	var (
		escapes      bool
		releases     []token.Pos
		hasDefer     bool
		returnsAfter []token.Pos
	)
	// isUse reports whether expr is exactly our variable.
	isUse := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.ObjectOf(id)
		return obj == acq.obj
	}
	// A use as the receiver of the release method is the pairing; as a
	// receiver of any other method it is neutral (AddCycles, SetAttr,
	// Charge); any other appearance is an escape.
	// isErrGuard recognizes `if err != nil` over the acquisition's own
	// error: returns under it are the failure path, where the handle was
	// never minted.
	isErrGuard := func(cond ast.Expr) bool {
		if acq.errObj == nil {
			return false
		}
		guard := false
		ast.Inspect(cond, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.NEQ {
				return true
			}
			x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
			if yid, ok := y.(*ast.Ident); ok && yid.Name == "nil" {
				if xid, ok := x.(*ast.Ident); ok && pass.ObjectOf(xid) == acq.errObj {
					guard = true
				}
			}
			return true
		})
		return guard
	}
	var walk func(n ast.Node, inDefer, inFuncLit, inErrGuard bool)
	walk = func(n ast.Node, inDefer, inFuncLit, inErrGuard bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				walk(m.Call, true, inFuncLit, inErrGuard)
				return false
			case *ast.FuncLit:
				// The literal's body runs at an unknown time; a release
				// inside a *deferred* literal still pairs. Any other use
				// inside a literal is treated as an escape.
				walk(m.Body, inDefer, true, inErrGuard)
				return false
			case *ast.IfStmt:
				if isErrGuard(m.Cond) {
					if m.Init != nil {
						walk(m.Init, inDefer, inFuncLit, inErrGuard)
					}
					walk(m.Body, inDefer, inFuncLit, true)
					if m.Else != nil {
						walk(m.Else, inDefer, inFuncLit, inErrGuard)
					}
					return false
				}
				return true
			case *ast.ReturnStmt:
				if !inFuncLit && !inErrGuard && m.Pos() > acq.pos {
					returnsAfter = append(returnsAfter, m.Pos())
				}
				for _, r := range m.Results {
					if isUse(r) {
						escapes = true
					}
				}
				// Still inspect children for calls like `return f(v)`.
				return true
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && isUse(sel.X) {
					if sel.Sel.Name == acq.kind.release {
						releases = append(releases, m.Pos())
						if inDefer {
							hasDefer = true
						}
					}
					// Receiver use: walk only the arguments.
					for _, a := range m.Args {
						walk(a, inDefer, inFuncLit, inErrGuard)
					}
					return false
				}
				for _, a := range m.Args {
					if isUse(a) {
						escapes = true
					}
				}
				return true
			case *ast.AssignStmt:
				// v on an RHS (aliasing/storing) escapes; v reassigned on
				// the LHS makes tracking unsound, treat as escape too.
				for _, r := range m.Rhs {
					if isUse(r) {
						escapes = true
					}
				}
				for _, l := range m.Lhs {
					if l.Pos() != acq.pos && isUse(l) {
						escapes = true
					}
				}
				return true
			case *ast.CompositeLit:
				for _, el := range m.Elts {
					e := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						e = kv.Value
					}
					if isUse(e) {
						escapes = true
					}
				}
				return true
			case *ast.SendStmt:
				if isUse(m.Value) {
					escapes = true
				}
				return true
			case *ast.IndexExpr:
				// v used as a map/slice index is neutral; v being indexed
				// cannot happen for these pointer types.
				return true
			}
			return true
		})
	}
	walk(body, false, false, false)
	if escapes {
		return
	}
	short := acq.kind.typ + "." + acq.kind.release
	if len(releases) == 0 {
		pass.Reportf(acq.pos,
			"%s acquired here never reaches %s: the %s leaks on every path",
			acq.obj.Name(), short, acq.kind.typ)
		return
	}
	if hasDefer {
		return
	}
	first := releases[0]
	for _, r := range releases[1:] {
		if r < first {
			first = r
		}
	}
	for _, ret := range returnsAfter {
		if ret < first {
			pass.Reportf(acq.pos,
				"%s does not reach %s on the early-return path at line %d: defer the release",
				acq.obj.Name(), short, pass.Fset.Position(ret).Line)
			return
		}
	}
}
