package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/lockorder", "hwstar/internal/serve", analysis.LockOrder)
}

// TestLockOrderScope: the lock-graph rule covers the five concurrency-heavy
// tiers; the same nesting in a package outside them draws no diagnostics.
func TestLockOrderScope(t *testing.T) {
	if diags := runOn(t, "testdata/lockorder", "hwstar/internal/workload", analysis.LockOrder); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}
