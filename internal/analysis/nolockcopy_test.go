package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestNoLockCopy(t *testing.T) {
	analysistest.Run(t, "testdata/nolockcopy", "hwstar/internal/metrics", analysis.NoLockCopy)
}
