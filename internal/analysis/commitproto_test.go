package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestCommitProto(t *testing.T) {
	analysistest.Run(t, "testdata/commitproto", "hwstar/internal/store", analysis.CommitProto)
}

// TestCommitProtoScope: the commit protocol is the store's law, not the
// tree's — the same calls in another package draw no diagnostics (serve
// writes no durable state; what it persists goes through store).
func TestCommitProtoScope(t *testing.T) {
	if diags := runOn(t, "testdata/commitproto", "hwstar/internal/serve", analysis.CommitProto); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}
