package analysis_test

import (
	"strings"
	"testing"

	"hwstar/internal/analysis"
)

// TestSuppressions drives the //hwlint:ignore machinery end to end:
// well-formed suppressions (trailing or stand-alone) silence the named
// analyzer; a suppression without a reason or with an unknown name is
// itself a diagnostic AND fails to suppress.
func TestSuppressions(t *testing.T) {
	diags := runOn(t, "testdata/suppress", "hwstar/internal/serve", analysis.CtxFirst)
	type expect struct {
		substr string
		count  int
	}
	expects := []expect{
		{"malformed //hwlint:ignore", 1},
		{"unknown analyzer nosuchanalyzer", 1},
		// MissingReason, UnknownName, and OtherAnalyzerName each leave
		// their context.Background unsuppressed; SameLine and LineAbove
		// suppress theirs.
		{"context.Background in library code", 3},
	}
	for _, e := range expects {
		n := 0
		for _, d := range diags {
			if strings.Contains(d.Message, e.substr) {
				n++
			}
		}
		if n != e.count {
			t.Errorf("want %d diagnostic(s) containing %q, got %d in %v", e.count, e.substr, n, diags)
		}
	}
	if want := 5; len(diags) != want {
		t.Errorf("want %d total diagnostics, got %d: %v", want, len(diags), diags)
	}
}
