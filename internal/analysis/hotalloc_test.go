package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", "hwstar/internal/join", analysis.HotAlloc)
}

// TestHotAllocServe: the serving layer joined the scope when the vectorized
// scan moved batch execution into it — span attributes and retry annotations
// in its loops are held to the same no-boxing rule.
func TestHotAllocServe(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc_serve", "hwstar/internal/serve", analysis.HotAlloc)
}

// TestHotAllocScope: packages off the query path format error messages and
// trace attributes at will; the boxing rule binds only the hot packages.
func TestHotAllocScope(t *testing.T) {
	if diags := runOn(t, "testdata/hotalloc", "hwstar/internal/frontend", analysis.HotAlloc); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}
