package analysis_test

import (
	"testing"

	"hwstar/internal/analysis"
	"hwstar/internal/analysis/analysistest"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", "hwstar/internal/join", analysis.HotAlloc)
}

// TestHotAllocScope: the serving layer formats error messages and trace
// attributes at will; the boxing rule binds only the morsel-processing
// packages.
func TestHotAllocScope(t *testing.T) {
	if diags := runOn(t, "testdata/hotalloc", "hwstar/internal/serve", analysis.HotAlloc); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced diagnostics: %v", diags)
	}
}
