package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// A Package is one loaded, parsed, type-checked package of the module under
// analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// An exportSet maps import paths to compiled export-data files, plus the
// shared importer that reads them. One export set (and its type cache) is
// shared by every package load rooted at the same module directory, so the
// whole lint run and the whole analysistest suite pay for `go list -export`
// and std-library import loading once.
type exportSet struct {
	fset    *token.FileSet
	imp     types.Importer
	mu      sync.Mutex // the stdlib gc importer is not concurrency-safe
	exports map[string]string
	roots   []listPkg
}

var (
	exportSetsMu sync.Mutex
	exportSets   = map[string]*exportSet{}
)

// loadExportSet runs `go list -export -deps` once per module root and caches
// the result for the life of the process. The toolchain compiles anything
// stale, so the export data always matches the current tree.
func loadExportSet(root string) (*exportSet, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	exportSetsMu.Lock()
	defer exportSetsMu.Unlock()
	if es, ok := exportSets[abs]; ok {
		return es, nil
	}
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error", "./...")
	cmd.Dir = abs
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list -export in %s: %w\n%s", abs, err, stderr.String())
	}
	es := &exportSet{fset: token.NewFileSet(), exports: map[string]string{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			es.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			es.roots = append(es.roots, p)
		}
	}
	es.imp = importer.ForCompiler(es.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := es.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	exportSets[abs] = es
	return es, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// typecheck parses and checks one package's files under the shared export
// set. asPath is the import path the package is checked (and scoped) as.
func (es *exportSet) typecheck(asPath, dir string, goFiles []string) (*Package, error) {
	es.mu.Lock()
	defer es.mu.Unlock()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(es.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: es.imp}
	tpkg, err := conf.Check(asPath, es.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", asPath, err)
	}
	return &Package{
		Path:  asPath,
		Dir:   dir,
		Fset:  es.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load parses and type-checks every package of the module rooted at root
// (the directory holding go.mod, or any directory inside the module).
// Test files are not analyzed: the invariants hwlint guards are
// production-code invariants, and tests legitimately pin seeds, compare
// errors structurally, and allocate freely.
func Load(root string) ([]*Package, error) {
	es, err := loadExportSet(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range es.roots {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := es.typecheck(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single directory dir — typically an
// analysistest testdata package, which the go tool itself never sees — as if
// its import path were asPath. Imports of module-internal packages resolve
// against the export data of the module rooted at root.
func LoadDir(root, dir, asPath string) (*Package, error) {
	es, err := loadExportSet(root)
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	return es.typecheck(asPath, dir, goFiles)
}
