package hwstar

// Integration tests: flows that cross module boundaries, including the
// failure-injection requirement from DESIGN.md — interference and machine
// choice may change timing, never results.

import (
	"context"
	"reflect"
	"testing"

	"hwstar/internal/cluster"
	"hwstar/internal/compress"
	"hwstar/internal/hw"
	"hwstar/internal/join"
	"hwstar/internal/queries"
	"hwstar/internal/scan"
	"hwstar/internal/sched"
	hwsort "hwstar/internal/sort"
	"hwstar/internal/vmsim"
	"hwstar/internal/workload"
)

// TestInterferenceChangesTimingNotResults runs the same shared-scan batch
// on an undisturbed and a heavily disturbed scheduler and requires equal
// results with strictly worse timing.
func TestInterferenceChangesTimingNotResults(t *testing.T) {
	m := hw.Server2S()
	rel, err := scan.NewRelation([][]int64{
		workload.UniformInts(51, 40000, 10000),
		workload.UniformInts(52, 40000, 500),
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]scan.Query, 32)
	los := workload.UniformInts(53, len(qs), 9000)
	for i := range qs {
		qs[i] = scan.Query{FilterCol: 0, Lo: los[i], Hi: los[i] + 800, AggCol: 1}
	}
	run := func(interference float64) ([]int64, float64) {
		s, err := sched.New(m, sched.Options{Workers: 8, Stealing: true, Interference: interference})
		if err != nil {
			t.Fatal(err)
		}
		res, schedRes, err := scan.ParallelShared(context.Background(), rel, qs, scan.SharedOptions{UseQueryIndex: true}, s, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return res, schedRes.MakespanCycles
	}
	quiet, quietCycles := run(1)
	noisy, noisyCycles := run(3)
	if !reflect.DeepEqual(quiet, noisy) {
		t.Fatal("interference changed query results")
	}
	if noisyCycles <= quietCycles {
		t.Fatalf("interference should slow the run: %f <= %f", noisyCycles, quietCycles)
	}
}

// TestMachineProfileChangesTimingNotResults runs the same join on all four
// machine profiles: identical matches, different cycles.
func TestMachineProfileChangesTimingNotResults(t *testing.T) {
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 54, BuildRows: 20000, ProbeRows: 80000, ZipfS: 1.2})
	in := join.Input{BuildKeys: g.BuildKeys, BuildVals: g.BuildVals, ProbeKeys: g.ProbeKeys, ProbeVals: g.ProbeVals}
	var matches []int64
	var cycles []float64
	for _, m := range []*Machine{Laptop(), Server2S(), NUMA4S(), Manycore()} {
		acct := hw.NewAccount(m, hw.DefaultContext())
		r, err := join.Radix(in, join.RadixOptions{}, m, acct)
		if err != nil {
			t.Fatal(err)
		}
		matches = append(matches, r.Matches)
		cycles = append(cycles, acct.TotalCycles())
	}
	for i := 1; i < len(matches); i++ {
		if matches[i] != matches[0] {
			t.Fatal("machine profile changed join results")
		}
	}
	distinct := map[float64]bool{}
	for _, c := range cycles {
		distinct[c] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("different machines should price differently: %v", cycles)
	}
}

// TestCompressedDistributedPipeline chains the subsystems: generate, sort,
// compress, ship through a distributed join, and verify against the
// single-node uncompressed reference.
func TestCompressedDistributedPipeline(t *testing.T) {
	g := workload.GenerateJoin(workload.JoinConfig{Seed: 55, BuildRows: 5000, ProbeRows: 20000})
	in := join.Input{BuildKeys: g.BuildKeys, BuildVals: g.BuildVals, ProbeKeys: g.ProbeKeys, ProbeVals: g.ProbeVals}

	// Sort a copy of the probe keys, compress, decode, and make sure the
	// round trip feeds the same multiset into the join.
	sorted := append([]int64(nil), in.ProbeKeys...)
	hwsort.Radix(sorted, hwsort.RadixOptions{}, hw.Server2S())
	c := compress.Encode(sorted)
	if c.Ratio() <= 1 {
		t.Fatalf("sorted keys should compress, ratio %f", c.Ratio())
	}
	decoded := c.Decode()
	var sumA, sumB int64
	for i := range sorted {
		sumA += sorted[i]
		sumB += decoded[i]
	}
	if sumA != sumB || c.Sum() != sumA {
		t.Fatal("compression round trip lost data")
	}

	want, err := join.NPO(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	rack := cluster.Rack10GbE(4)
	got, err := rack.Join(t.Context(), in, cluster.StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matches != want.Matches || got.Checksum != want.Checksum {
		t.Fatalf("distributed join disagrees: %+v vs %+v", got.Result, want)
	}
}

// TestEnginesAgreeAcrossLayoutsAndMachines is the widest equivalence net:
// Q1 on every engine must match for multiple machines (the machine only
// affects accounting, which must not touch results).
func TestEnginesAgreeAcrossMachines(t *testing.T) {
	li := workload.LineItem(56, 25000)
	for _, m := range []*Machine{Laptop(), Manycore()} {
		var counts []int64
		for _, eng := range queries.Engines() {
			acct := hw.NewAccount(m, hw.DefaultContext())
			rows, err := queries.Q1(eng, li, queries.DefaultQ1(), acct)
			if err != nil {
				t.Fatal(err)
			}
			var c int64
			for _, r := range rows {
				c += r.Count
			}
			counts = append(counts, c)
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Fatalf("engines disagree on %s: %v", m.Name, counts)
		}
	}
}

// TestVMSimOverRealQueryCosts glues vmsim to a real query's cost profile:
// the distribution input is a priced Q6, so the predictability experiment
// rests on real operator behaviour.
func TestVMSimOverRealQueryCosts(t *testing.T) {
	m := hw.Server2S()
	li := workload.LineItem(57, 50000)
	acct := hw.NewAccount(m, hw.DefaultContext())
	if _, err := queries.Q6(queries.EngineFused, li, queries.DefaultQ6(), acct); err != nil {
		t.Fatal(err)
	}
	spec := vmsim.QuerySpec{Work: hw.Work{
		Tuples:          int64(li.NumRows()),
		ComputePerTuple: acct.Breakdown().Compute / float64(li.NumRows()),
		SeqReadBytes:    int64(li.NumRows()) * 32,
	}}
	quiet, err := vmsim.RunDistribution(m, spec, vmsim.None(), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := vmsim.RunDistribution(m, spec, vmsim.Heavy(), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if vmsim.Summarize(noisy).P99 <= vmsim.Summarize(quiet).P99 {
		t.Fatal("heavy interference should inflate the tail of a real query profile")
	}
}
