package main

import (
	"strings"
	"testing"

	"hwstar/internal/analysis"
)

// TestRepoIsLintClean IS the gate, enforced from inside the test suite as
// well as from make lint: every package of the module passes every hwlint
// analyzer. If this fails, the tree has a house-rule violation — fix it or
// put a reviewed //hwlint:ignore with a reason next to it.
func TestRepoIsLintClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("moduleRoot: %v", err)
	}
	pkgs, err := analysis.Load(root)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded (%d): the gate is not covering the tree", len(pkgs))
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestListFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("hwlint -list exited %d: %s", code, errOut.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s:\n%s", a.Name, out.String())
		}
	}
}

func TestChecksSelection(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "senterr,ctxfirst"}, &out, &errOut); code != 0 {
		t.Fatalf("hwlint -checks senterr,ctxfirst exited %d: %s\n%s", code, out.String(), errOut.String())
	}
}

func TestUnknownCheckFailsLoudly(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "nosuchcheck"}, &out, &errOut); code != 2 {
		t.Fatalf("hwlint -checks nosuchcheck exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errOut.String())
	}
}
