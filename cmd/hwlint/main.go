// Command hwlint is hwstar's house-rule multichecker: it loads every package
// of the module, runs the internal/analysis suite, and prints one
// file:line:col diagnostic per violation — editor-jumpable — exiting 1 if
// anything is found. It is the hard gate `make lint` and CI run; it needs
// nothing beyond the Go toolchain (the analyzers are stdlib-only), so it
// cannot be skipped for want of a network.
//
// Usage:
//
//	hwlint [-checks ctxfirst,senterr,...] [-list] [-root dir]
//
// Reviewed exemptions are written in the source, with the reason on the
// record:
//
//	//hwlint:ignore ctxfirst Run is the documented no-context bridge
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"hwstar/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hwlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks = fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
		list   = fs.Bool("list", false, "list analyzers and the invariants they guard, then exit")
		root   = fs.String("root", "", "module root to analyze (default: the module containing the working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*checks, ","))
		if err != nil {
			fmt.Fprintln(stderr, "hwlint:", err)
			return 2
		}
	}
	dir := *root
	if dir == "" {
		var err error
		dir, err = moduleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "hwlint:", err)
			return 2
		}
	}
	pkgs, err := analysis.Load(dir)
	if err != nil {
		fmt.Fprintln(stderr, "hwlint:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "hwlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hwlint: %d violation(s) across %d package(s) checked\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("not inside a Go module (go list -m: %w)", err)
	}
	return strings.TrimSpace(string(out)), nil
}
