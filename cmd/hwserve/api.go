package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"hwstar"
)

// serveAPI is server mode: one Server fronted by the multi-tenant /v1 API,
// with the debug endpoints on the same address, serving until ctx is
// cancelled. The server boots with a registered "facts" relation (for
// op=scan) and a "lineitem" table (for op=q1/q6) generated at cfg.Rows, so
// a fresh instance is immediately queryable.
func serveAPI(ctx context.Context, cfg Config, out io.Writer) error {
	if cfg.Shards > 1 {
		return serveAPICluster(ctx, cfg, out)
	}
	srv, _, st, err := buildServer(cfg)
	if err != nil {
		return err
	}
	if st != nil {
		defer st.Close()
	}
	cols := [][]int64{
		hwstar.GenUniform(41, cfg.Rows, 100000),
		hwstar.GenUniform(42, cfg.Rows, 1000),
	}
	if st == nil {
		if err := srv.Register("facts", cols); err != nil {
			return err
		}
	}
	lineitem := hwstar.GenLineItem(46, cfg.Rows)

	fe, err := hwstar.NewFrontend(hwstar.FrontendConfig{
		Server:       srv,
		Tenants:      cfg.Tenants,
		SessionTTL:   time.Duration(cfg.SessionTTL),
		QueryTimeout: time.Duration(cfg.QueryTimeout),
		Lineitems:    map[string]*hwstar.Table{"lineitem": lineitem},
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", fe.Handler())
	debug := newDebugMux(srv.Metrics())
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)

	ln, err := net.Listen("tcp", cfg.ServeAPI)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hwserve: /v1 API on %s (%d tenants, tables: facts, lineitem; /metrics, /debug/pprof)\n",
		ln.Addr(), len(cfg.Tenants))

	if st != nil {
		// Cold start under load: the listener is already up, so while the
		// durable hot set replays /v1 answers 503 UNAVAILABLE_RECOVERING
		// (retryable, with Retry-After) instead of refusing connections.
		// Once admission opens, "facts" is (re)registered so a fresh data
		// directory is immediately queryable too.
		go func() {
			if err := srv.WaitRecovered(ctx); err != nil {
				return // shutting down before replay finished
			}
			if err := srv.Register("facts", cols); err != nil {
				fmt.Fprintf(out, "hwserve: register facts: %v\n", err)
				return
			}
			h := srv.Health()
			fmt.Fprintf(out, "hwserve: durable store %s ready (manifest v%d, %d tables replayed, %d hot)\n",
				cfg.DataDir, h.StoreVersion, h.Recovery.TablesTotal, h.Recovery.TablesHot)
		}()
	}

	hs := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "hwserve: draining admitted work")
	return srv.Close()
}
