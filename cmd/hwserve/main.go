// Command hwserve drives the hwstar concurrent query service in one of two
// modes:
//
//   - Load-generator mode (the default): start a Server on a machine
//     profile, fire a cohort of concurrent clients at it, and report what
//     the serving layer did — throughput, admission decisions, batch-size
//     distribution, and the modeled cycles each query paid.
//   - Server mode (-serve-api addr): mount the multi-tenant /v1 HTTP API
//     (sessions, per-tenant rate limits and quotas, priority classes; see
//     internal/frontend) plus the debug endpoints on addr and serve until
//     SIGINT/SIGTERM. Server mode needs at least one tenant, so it is
//     normally started from a config file.
//
// Configuration is one Config struct. Every field can be set from a JSON
// file (-config server.json) or from flags; flags set explicitly on the
// command line override file values, and -print-config dumps the effective
// configuration in the exact format -config accepts:
//
//	hwserve -print-config > server.json   # capture defaults
//	hwserve -config server.json           # run them
//	hwserve -config server.json -clients 128   # file + one override
//
// A minimal server-mode config:
//
//	{
//	  "serve_api": "127.0.0.1:8080",
//	  "tenants": [
//	    {"id": "alice", "key": "alice-key", "priority": "interactive"},
//	    {"id": "bob",   "key": "bob-key",   "priority": "batch",
//	     "rate_per_sec": 50, "burst": 10, "max_concurrent": 4}
//	  ]
//	}
//
// The pre-Config flag names (-maxbatch, -trace) remain as aliases for one
// release; prefer -max-batch and -trace-every.
//
// -listen mounts the observability endpoints for a load-generator run:
// Prometheus-text metrics on /metrics, expvar JSON on /debug/vars, and the
// standard pprof profiles on /debug/pprof/ (server mode serves them on the
// API address automatically). -trace-every n samples every nth request into
// a span tree dumped after the report.
//
// The default workload is all shared-scannable range aggregates; -mix mixed
// adds joins and grouped aggregations that exercise the worker budget.
//
// -vectorized routes shared scans through the batch-at-a-time pass over
// FOR/RLE-compressed columns (zone-map pruning, precomputed block sums,
// decode-on-demand); -vec-morsel-rows and -vec-batch-width seed its knobs,
// and -vec-adaptive arms the online controller that retunes both from pass
// feedback. The report then includes a per-pass block-outcome line.
//
// -mem-budget arms the memory governor: joins and grouped aggregations
// reserve against a server-wide byte budget at admission, charge their hash
// tables against it, and degrade to grace-hash spill plans when the grant
// runs out. -oom-kill switches the governor to the naive mode that allocates
// past the budget and then kills the query. -alloc-fail-prob injects
// allocation failures at the charge sites.
//
// The fault flags arm a seeded injector on the server (panics, transient
// failures, stragglers), and the resilience flags configure how the server
// absorbs them: morsel retry with exponential backoff, panic isolation with
// straggler re-dispatch, and a circuit breaker that sheds load after
// consecutive failures. SIGINT/SIGTERM stops the clients and drains admitted
// work through Server.Close before the final report prints.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hwstar"
	"hwstar/internal/hw"
	"hwstar/internal/metrics"
)

// engine is the surface the load loop drives — a single *hwstar.Server or,
// with -shards > 1, a replicated *hwstar.Router. Both speak it verbatim.
type engine interface {
	Register(name string, cols [][]int64) error
	Submit(ctx context.Context, req hwstar.Request) (hwstar.Response, error)
	Metrics() *metrics.Registry
	Health() hwstar.ServerHealth
	Close() error
}

type report struct {
	completed, rejected, deadlined int64
	shed, failed                   int64
	partials                       int64
	memShed, oomKilled             int64
	elapsed                        time.Duration
	batches                        int
	batchP50, batchMax             float64
	meanMcyc                       float64 // per completed query
	queueDepth                     int
	interrupted                    bool
	health                         hwstar.ServerHealth
	traces                         []hwstar.TraceData
	tracesStarted, tracesDropped   uint64
	listenAddr                     string
	cluster                        *hwstar.ClusterHealth
	chaosKills                     int
}

// buildServer assembles the Server (and optional Tracer and durable Store)
// both modes share. When cfg.DataDir is set the store is opened — replaying
// any committed state — before the server boots on top of it; the caller
// owns the returned store and must close it after Server.Close.
func buildServer(cfg Config) (*hwstar.Server, *hwstar.Tracer, *hwstar.Store, error) {
	m, ok := hw.Profiles()[cfg.Machine]
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown machine %q", cfg.Machine)
	}
	opts := hwstar.ServerOptions{
		QueueDepth:       cfg.Queue,
		MaxBatch:         cfg.MaxBatch,
		BatchWindow:      time.Duration(cfg.Window),
		MaxRetries:       cfg.Retries,
		RetryBackoff:     time.Duration(cfg.Backoff),
		BreakerThreshold: cfg.Breaker,
		BreakerCooldown:  time.Duration(cfg.Cooldown),
		Vectorized:       cfg.Vectorized,
		VecMorselRows:    cfg.VecMorselRows,
		VecBatchWidth:    cfg.VecBatchWidth,
		VecAdaptive:      cfg.VecAdaptive,
	}
	if cfg.MemBudget > 0 {
		opts.Memory = hwstar.MemoryConfig{
			BudgetBytes:   cfg.MemBudget,
			PerQueryBytes: cfg.MemQuery,
			KillOnOverage: cfg.OOMKill,
		}
	}
	if cfg.faulty() {
		opts.Faults = hwstar.NewFaultInjector(hwstar.FaultConfig{
			Seed:          cfg.FaultSeed,
			PanicProb:     cfg.PanicProb,
			TransientProb: cfg.TransientProb,
			StragglerProb: cfg.StragglerProb,
			StragglerSkew: cfg.StragglerSkew,
			AllocFailProb: cfg.AllocFailProb,
		})
		// Injected panics and stragglers are survivable only with isolation
		// and re-dispatch armed.
		opts.IsolatePanics = true
		opts.StragglerThreshold = 3
	}
	var tracer *hwstar.Tracer
	if cfg.TraceEvery > 0 {
		tracer = hwstar.NewTracer(hwstar.TraceConfig{Capacity: 16, SampleEvery: cfg.TraceEvery})
		opts.Trace = tracer
	}
	var st *hwstar.Store
	if cfg.DataDir != "" {
		var err error
		st, err = hwstar.OpenStore(hwstar.StoreOptions{
			Dir:      cfg.DataDir,
			Machine:  m,
			HotBytes: cfg.HotBytes,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		opts.Store = st
		opts.CheckpointInterval = time.Duration(cfg.CheckpointInterval)
	}
	srv, err := hwstar.NewServer(m, opts)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, nil, nil, err
	}
	return srv, tracer, st, nil
}

func run(ctx context.Context, cfg Config) (*report, error) {
	var (
		eng    engine
		router *hwstar.Router
		tracer *hwstar.Tracer
		st     *hwstar.Store
	)
	if cfg.Shards > 1 {
		rt, tr, stores, err := buildRouter(ctx, cfg)
		if err != nil {
			return nil, err
		}
		defer func() {
			for _, s := range stores {
				s.Close()
			}
		}()
		eng, router, tracer = rt, rt, tr
	} else {
		srv, tr, store, err := buildServer(cfg)
		if err != nil {
			return nil, err
		}
		st = store
		if st != nil {
			defer st.Close()
			// Load generation starts against a fully replayed hot set; the
			// cold-start-under-load path is server mode's (see serveAPI).
			if err := srv.WaitRecovered(ctx); err != nil {
				return nil, err
			}
		}
		eng, tracer = srv, tr
	}
	var listenAddr string
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, err
		}
		listenAddr = ln.Addr().String()
		hs := &http.Server{Handler: newDebugMux(eng.Metrics())}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
	}
	cols := [][]int64{
		hwstar.GenUniform(41, cfg.Rows, 100000),
		hwstar.GenUniform(42, cfg.Rows, 1000),
	}
	if err := eng.Register("facts", cols); err != nil {
		return nil, err
	}
	g := hwstar.GenJoin(43, 4096, 16384, 0)
	var joinReq hwstar.Request
	joinReq.Op = hwstar.OpJoin
	joinReq.Algorithm = "auto"
	joinReq.Join.BuildKeys, joinReq.Join.BuildVals = g.BuildKeys, g.BuildVals
	joinReq.Join.ProbeKeys, joinReq.Join.ProbeVals = g.ProbeKeys, g.ProbeVals
	aggKeys := hwstar.GenUniform(44, 65536, 1024)
	aggVals := hwstar.GenUniform(45, 65536, 100)

	var chaosStop chan struct{}
	chaosKills := make(chan int, 1)
	if router != nil && cfg.NodeLossProb > 0 {
		chaosStop = make(chan struct{})
		go func() { chaosKills <- runChaos(ctx, router, chaosStop) }()
	}

	var completed, rejected, deadlined, shed, failed atomic.Int64
	var partials, memShed, oomKilled atomic.Int64
	var cycles atomicFloat
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < cfg.Requests; i++ {
				if ctx.Err() != nil {
					return // interrupted: stop submitting, let Close drain
				}
				req := hwstar.Request{
					Op:    hwstar.OpScan,
					Table: "facts",
					Query: hwstar.ScanQuery{FilterCol: 0, Lo: int64(rng.Intn(90000)), AggCol: 1},
				}
				req.Query.Hi = req.Query.Lo + 5000
				if cfg.Mix == "mixed" {
					switch rng.Intn(4) {
					case 1:
						req = joinReq
					case 2:
						req = hwstar.Request{Op: hwstar.OpGroupSum, Keys: aggKeys, Vals: aggVals, Strategy: hwstar.AggRadix}
					}
				}
				reqCtx := ctx
				cancel := func() {}
				if cfg.Deadline > 0 {
					reqCtx, cancel = context.WithTimeout(reqCtx, time.Duration(cfg.Deadline))
				}
				resp, err := eng.Submit(reqCtx, req)
				cancel()
				switch {
				case err == nil:
					completed.Add(1)
					cycles.add(resp.SimCycles)
				case errors.Is(err, hwstar.ErrPartialResult):
					// The flagged answer is usable and exact over the
					// covered fraction; count it apart from failures.
					partials.Add(1)
				case errors.Is(err, hwstar.ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, hwstar.ErrDegraded):
					shed.Add(1)
				case errors.Is(err, hwstar.ErrOOMKilled):
					oomKilled.Add(1)
				case errors.Is(err, hwstar.ErrMemoryPressure):
					memShed.Add(1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					deadlined.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	bs := eng.Metrics().Histogram("serve.batch_size")
	r := &report{
		completed: completed.Load(), rejected: rejected.Load(), deadlined: deadlined.Load(),
		shed: shed.Load(), failed: failed.Load(), partials: partials.Load(),
		memShed: memShed.Load(), oomKilled: oomKilled.Load(),
		elapsed:  elapsed,
		batches:  bs.Count(),
		batchP50: bs.Quantile(0.5), batchMax: bs.Max(),
		queueDepth:  cfg.Queue,
		interrupted: ctx.Err() != nil,
	}
	if r.completed > 0 {
		r.meanMcyc = cycles.load() / float64(r.completed) / 1e6
	}
	if chaosStop != nil {
		close(chaosStop)
		r.chaosKills = <-chaosKills
	}
	r.health = eng.Health()
	r.listenAddr = listenAddr
	if router != nil {
		ch := router.ClusterHealth()
		r.cluster = &ch
	}
	if tracer != nil {
		r.traces = tracer.Snapshot()
		r.tracesStarted, r.tracesDropped = tracer.Started()
	}
	if err := eng.Close(); err != nil {
		return nil, err
	}
	if st != nil {
		// Close flushed a final checkpoint; re-read health so the report
		// shows the manifest version the run actually left on disk.
		r.health = eng.Health()
	}
	return r, nil
}

func (r *report) print(w io.Writer, cfg Config) {
	total := int64(cfg.Clients) * int64(cfg.Requests)
	fmt.Fprintf(w, "%d clients x %d requests on %s (%s mix)\n", cfg.Clients, cfg.Requests, cfg.Machine, cfg.Mix)
	if r.interrupted {
		fmt.Fprintf(w, "  interrupted: clients stopped, admitted work drained\n")
	}
	fmt.Fprintf(w, "  completed %d / %d  (rejected %d, missed deadline %d, shed %d, failed %d)\n",
		r.completed, total, r.rejected, r.deadlined, r.shed, r.failed)
	if r.cluster != nil {
		ch := r.cluster
		fmt.Fprintf(w, "  cluster %d shards x %d replicas  (node losses %d, failovers %d, hedges %d/%d won, partial answers %d, re-replications %d)\n",
			ch.Shards, ch.Replicas, ch.NodeLosses, ch.Failovers, ch.HedgeWins, ch.Hedges, r.partials, ch.Rereplications)
	}
	fmt.Fprintf(w, "  wall time %.2fs  (%.0f req/s)\n", r.elapsed.Seconds(), float64(r.completed)/r.elapsed.Seconds())
	if r.batches > 0 {
		fmt.Fprintf(w, "  scan batches %d  (p50 size %.0f, max %.0f)\n", r.batches, r.batchP50, r.batchMax)
	}
	fmt.Fprintf(w, "  modeled cost %.2f Mcycles/query (amortized over shared scans)\n", r.meanMcyc)
	if cfg.MemBudget > 0 {
		h := r.health
		fmt.Fprintf(w, "  memory budget %d KiB  (peak %d KiB, shed at admission %d, spilled %d for %d KiB, oom kills %d)\n",
			cfg.MemBudget>>10, h.Memory.PeakBytes>>10, r.memShed, h.Spills, h.SpillBytes>>10, r.oomKilled)
	}
	if cfg.Vectorized {
		h := r.health
		fmt.Fprintf(w, "  vectorized %d passes  (blocks: %d pruned, %d fast-summed, %d scanned; morsel %d rows, width %d, retunes %d, converged %v)\n",
			h.VecPasses, h.VecBlocksPruned, h.VecFastSums, h.VecBlocksScanned,
			h.Ctl.MorselRows, h.Ctl.BatchWidth, h.Ctl.Retunes, h.Ctl.Converged)
	}
	if cfg.faulty() {
		h := r.health
		fmt.Fprintf(w, "  health %s  (retries %d, exhausted %d, panics recovered %d, re-dispatched %d, stragglers retired %d, breaker trips %d)\n",
			h.State, h.Retries, h.RetryExhausted, h.PanicsRecovered, h.Redispatched, h.StragglersRetired, h.BreakerTrips)
		classes := make([]string, 0, len(h.Faults))
		for c := range h.Faults {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(w, "  faults injected:")
		for _, c := range classes {
			fmt.Fprintf(w, " %s=%d", c, h.Faults[c])
		}
		fmt.Fprintln(w)
	}
	if cfg.DataDir != "" {
		h := r.health
		fmt.Fprintf(w, "  durable store %s  (manifest v%d, recovered %d tables / %d hot, checkpoints %d, cold loads %d)\n",
			cfg.DataDir, h.StoreVersion, h.Recovery.TablesTotal, h.Recovery.TablesHot, h.Checkpoints, h.ColdLoads)
	}
	if r.listenAddr != "" {
		fmt.Fprintf(w, "  debug endpoints served on %s (/metrics, /debug/vars, /debug/pprof)\n", r.listenAddr)
	}
	if r.tracesStarted > 0 {
		fmt.Fprintf(w, "  traced %d requests (%d spans dropped); span trees of the last %d:\n",
			r.tracesStarted, r.tracesDropped, min(len(r.traces), 3))
		for _, td := range r.traces[max(0, len(r.traces)-3):] {
			fmt.Fprint(w, td.Render())
		}
	}
}

// atomicFloat accumulates float64 samples without a mutex on the hot path.
type atomicFloat struct {
	mu  sync.Mutex
	sum float64
}

func (a *atomicFloat) add(v float64) { a.mu.Lock(); a.sum += v; a.mu.Unlock() }
func (a *atomicFloat) load() float64 { a.mu.Lock(); defer a.mu.Unlock(); return a.sum }

func main() {
	cfg, printOnly, err := parseConfig(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if printOnly {
		if err := cfg.Print(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM stops the client cohort (or the API server); admitted
	// work still drains through Server.Close before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.ServeAPI != "" {
		if err := serveAPI(ctx, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	r, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r.print(os.Stdout, cfg)
}
