// Command hwserve drives the hwstar concurrent query service: it starts a
// Server on a machine profile, fires a cohort of concurrent clients at it,
// and reports what the serving layer did — throughput, admission decisions,
// batch-size distribution, and the modeled cycles each query paid.
//
// Usage:
//
//	hwserve [-machine name] [-clients n] [-requests n] [-rows n]
//	        [-queue n] [-maxbatch n] [-window d] [-mix scan|mixed]
//	        [-deadline d]
//	        [-mem-budget bytes] [-mem-query bytes] [-oom-kill]
//	        [-fault-seed n] [-panic-prob p] [-transient-prob p]
//	        [-straggler-prob p] [-straggler-skew k] [-alloc-fail-prob p]
//	        [-retries n] [-backoff d] [-breaker n] [-cooldown d]
//	        [-listen addr] [-trace n]
//
// -listen mounts the observability endpoints for the run's duration:
// Prometheus-text metrics on /metrics, expvar JSON on /debug/vars, and the
// standard pprof profiles on /debug/pprof/. -trace n samples every nth
// request into a span tree (queue → batch assembly → execute → retries,
// with wall time and simulated cycles per stage) and dumps the last few
// trees after the report.
//
// The default workload is all shared-scannable range aggregates; -mix mixed
// adds joins and grouped aggregations that exercise the worker budget.
//
// -mem-budget arms the memory governor: joins and grouped aggregations
// reserve against a server-wide byte budget at admission, charge their hash
// tables against it, and degrade to grace-hash spill plans when the grant
// runs out. -oom-kill switches the governor to the naive mode that allocates
// past the budget and then kills the query. -alloc-fail-prob injects
// allocation failures at the charge sites.
//
// The fault flags arm a seeded injector on the server (panics, transient
// failures, stragglers), and the resilience flags configure how the server
// absorbs them: morsel retry with exponential backoff, panic isolation with
// straggler re-dispatch, and a circuit breaker that sheds load after
// consecutive failures. SIGINT/SIGTERM stops the clients and drains admitted
// work through Server.Close before the final report prints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hwstar"
	"hwstar/internal/hw"
)

type config struct {
	machineName string
	clients     int
	requests    int // per client
	rows        int
	queueDepth  int
	maxBatch    int
	window      time.Duration
	deadline    time.Duration
	mix         string // "scan" or "mixed"

	// Memory governance (zero budget disables the governor).
	memBudget int64
	memQuery  int64
	oomKill   bool

	// Fault injection (zero probabilities disable the injector).
	faultSeed     int64
	panicProb     float64
	transientProb float64
	stragglerProb float64
	stragglerSkew float64
	allocFailProb float64

	// Resilience policy.
	retries  int
	backoff  time.Duration
	breaker  int
	cooldown time.Duration

	// Observability: listen mounts /metrics, /debug/vars, and /debug/pprof
	// on the given address for the run's duration; traceEvery samples every
	// Nth request into span trees dumped after the report (0 = off).
	listen     string
	traceEvery int
}

func (c config) faulty() bool {
	return c.panicProb > 0 || c.transientProb > 0 || c.stragglerProb > 0 || c.allocFailProb > 0
}

type report struct {
	completed, rejected, deadlined int64
	shed, failed                   int64
	memShed, oomKilled             int64
	elapsed                        time.Duration
	batches                        int
	batchP50, batchMax             float64
	meanMcyc                       float64 // per completed query
	queueDepth                     int
	interrupted                    bool
	health                         hwstar.ServerHealth
	traces                         []hwstar.TraceData
	tracesStarted, tracesDropped   uint64
	listenAddr                     string
}

func run(ctx context.Context, cfg config) (*report, error) {
	m, ok := hw.Profiles()[cfg.machineName]
	if !ok {
		return nil, fmt.Errorf("unknown machine %q", cfg.machineName)
	}
	if cfg.mix != "scan" && cfg.mix != "mixed" {
		return nil, fmt.Errorf("unknown mix %q (want scan or mixed)", cfg.mix)
	}
	opts := hwstar.ServerOptions{
		QueueDepth:       cfg.queueDepth,
		MaxBatch:         cfg.maxBatch,
		BatchWindow:      cfg.window,
		MaxRetries:       cfg.retries,
		RetryBackoff:     cfg.backoff,
		BreakerThreshold: cfg.breaker,
		BreakerCooldown:  cfg.cooldown,
	}
	if cfg.memBudget > 0 {
		opts.Memory = hwstar.MemoryConfig{
			BudgetBytes:   cfg.memBudget,
			PerQueryBytes: cfg.memQuery,
			KillOnOverage: cfg.oomKill,
		}
	}
	if cfg.faulty() {
		opts.Faults = hwstar.NewFaultInjector(hwstar.FaultConfig{
			Seed:          cfg.faultSeed,
			PanicProb:     cfg.panicProb,
			TransientProb: cfg.transientProb,
			StragglerProb: cfg.stragglerProb,
			StragglerSkew: cfg.stragglerSkew,
			AllocFailProb: cfg.allocFailProb,
		})
		// Injected panics and stragglers are survivable only with isolation
		// and re-dispatch armed.
		opts.IsolatePanics = true
		opts.StragglerThreshold = 3
	}
	var tracer *hwstar.Tracer
	if cfg.traceEvery > 0 {
		tracer = hwstar.NewTracer(hwstar.TraceConfig{Capacity: 16, SampleEvery: cfg.traceEvery})
		opts.Trace = tracer
	}
	srv, err := hwstar.NewServer(m, opts)
	if err != nil {
		return nil, err
	}
	var listenAddr string
	if cfg.listen != "" {
		ln, err := net.Listen("tcp", cfg.listen)
		if err != nil {
			return nil, err
		}
		listenAddr = ln.Addr().String()
		hs := &http.Server{Handler: newDebugMux(srv.Metrics())}
		go func() { _ = hs.Serve(ln) }()
		defer hs.Close()
	}
	cols := [][]int64{
		hwstar.GenUniform(41, cfg.rows, 100000),
		hwstar.GenUniform(42, cfg.rows, 1000),
	}
	if err := srv.Register("facts", cols); err != nil {
		return nil, err
	}
	g := hwstar.GenJoin(43, 4096, 16384, 0)
	var joinReq hwstar.Request
	joinReq.Op = hwstar.OpJoin
	joinReq.Algorithm = "auto"
	joinReq.Join.BuildKeys, joinReq.Join.BuildVals = g.BuildKeys, g.BuildVals
	joinReq.Join.ProbeKeys, joinReq.Join.ProbeVals = g.ProbeKeys, g.ProbeVals
	aggKeys := hwstar.GenUniform(44, 65536, 1024)
	aggVals := hwstar.GenUniform(45, 65536, 100)

	var completed, rejected, deadlined, shed, failed int64
	var memShed, oomKilled int64
	var cycles atomicFloat
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for i := 0; i < cfg.requests; i++ {
				if ctx.Err() != nil {
					return // interrupted: stop submitting, let Close drain
				}
				req := hwstar.Request{
					Op:    hwstar.OpScan,
					Table: "facts",
					Query: hwstar.ScanQuery{FilterCol: 0, Lo: int64(rng.Intn(90000)), AggCol: 1},
				}
				req.Query.Hi = req.Query.Lo + 5000
				if cfg.mix == "mixed" {
					switch rng.Intn(4) {
					case 1:
						req = joinReq
					case 2:
						req = hwstar.Request{Op: hwstar.OpGroupSum, Keys: aggKeys, Vals: aggVals, Strategy: hwstar.AggRadix}
					}
				}
				reqCtx := ctx
				cancel := func() {}
				if cfg.deadline > 0 {
					reqCtx, cancel = context.WithTimeout(reqCtx, cfg.deadline)
				}
				resp, err := srv.Submit(reqCtx, req)
				cancel()
				switch {
				case err == nil:
					atomic.AddInt64(&completed, 1)
					cycles.add(resp.SimCycles)
				case errors.Is(err, hwstar.ErrOverloaded):
					atomic.AddInt64(&rejected, 1)
				case errors.Is(err, hwstar.ErrDegraded):
					atomic.AddInt64(&shed, 1)
				case errors.Is(err, hwstar.ErrOOMKilled):
					atomic.AddInt64(&oomKilled, 1)
				case errors.Is(err, hwstar.ErrMemoryPressure):
					atomic.AddInt64(&memShed, 1)
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
					atomic.AddInt64(&deadlined, 1)
				default:
					atomic.AddInt64(&failed, 1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	bs := srv.Metrics().Histogram("serve.batch_size")
	r := &report{
		completed: completed, rejected: rejected, deadlined: deadlined,
		shed: shed, failed: failed,
		memShed: memShed, oomKilled: oomKilled,
		elapsed:  elapsed,
		batches:  bs.Count(),
		batchP50: bs.Quantile(0.5), batchMax: bs.Max(),
		queueDepth:  cfg.queueDepth,
		interrupted: ctx.Err() != nil,
	}
	if completed > 0 {
		r.meanMcyc = cycles.load() / float64(completed) / 1e6
	}
	r.health = srv.Health()
	r.listenAddr = listenAddr
	if tracer != nil {
		r.traces = tracer.Snapshot()
		r.tracesStarted, r.tracesDropped = tracer.Started()
	}
	if err := srv.Close(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *report) print(w io.Writer, cfg config) {
	total := int64(cfg.clients) * int64(cfg.requests)
	fmt.Fprintf(w, "%d clients x %d requests on %s (%s mix)\n", cfg.clients, cfg.requests, cfg.machineName, cfg.mix)
	if r.interrupted {
		fmt.Fprintf(w, "  interrupted: clients stopped, admitted work drained\n")
	}
	fmt.Fprintf(w, "  completed %d / %d  (rejected %d, missed deadline %d, shed %d, failed %d)\n",
		r.completed, total, r.rejected, r.deadlined, r.shed, r.failed)
	fmt.Fprintf(w, "  wall time %.2fs  (%.0f req/s)\n", r.elapsed.Seconds(), float64(r.completed)/r.elapsed.Seconds())
	if r.batches > 0 {
		fmt.Fprintf(w, "  scan batches %d  (p50 size %.0f, max %.0f)\n", r.batches, r.batchP50, r.batchMax)
	}
	fmt.Fprintf(w, "  modeled cost %.2f Mcycles/query (amortized over shared scans)\n", r.meanMcyc)
	if cfg.memBudget > 0 {
		h := r.health
		fmt.Fprintf(w, "  memory budget %d KiB  (peak %d KiB, shed at admission %d, spilled %d for %d KiB, oom kills %d)\n",
			cfg.memBudget>>10, h.Memory.PeakBytes>>10, r.memShed, h.Spills, h.SpillBytes>>10, r.oomKilled)
	}
	if cfg.faulty() {
		h := r.health
		fmt.Fprintf(w, "  health %s  (retries %d, exhausted %d, panics recovered %d, re-dispatched %d, stragglers retired %d, breaker trips %d)\n",
			h.State, h.Retries, h.RetryExhausted, h.PanicsRecovered, h.Redispatched, h.StragglersRetired, h.BreakerTrips)
		classes := make([]string, 0, len(h.Faults))
		for c := range h.Faults {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(w, "  faults injected:")
		for _, c := range classes {
			fmt.Fprintf(w, " %s=%d", c, h.Faults[c])
		}
		fmt.Fprintln(w)
	}
	if r.listenAddr != "" {
		fmt.Fprintf(w, "  debug endpoints served on %s (/metrics, /debug/vars, /debug/pprof)\n", r.listenAddr)
	}
	if r.tracesStarted > 0 {
		fmt.Fprintf(w, "  traced %d requests (%d spans dropped); span trees of the last %d:\n",
			r.tracesStarted, r.tracesDropped, min(len(r.traces), 3))
		for _, td := range r.traces[max(0, len(r.traces)-3):] {
			fmt.Fprint(w, td.Render())
		}
	}
}

// atomicFloat accumulates float64 samples without a mutex on the hot path.
type atomicFloat struct {
	mu  sync.Mutex
	sum float64
}

func (a *atomicFloat) add(v float64) { a.mu.Lock(); a.sum += v; a.mu.Unlock() }
func (a *atomicFloat) load() float64 { a.mu.Lock(); defer a.mu.Unlock(); return a.sum }

func main() {
	cfg := config{}
	flag.StringVar(&cfg.machineName, "machine", "server-2s8c", "machine profile name")
	flag.IntVar(&cfg.clients, "clients", 64, "concurrent clients")
	flag.IntVar(&cfg.requests, "requests", 10, "requests per client")
	flag.IntVar(&cfg.rows, "rows", 1<<20, "fact table rows")
	flag.IntVar(&cfg.queueDepth, "queue", 256, "intake queue depth")
	flag.IntVar(&cfg.maxBatch, "maxbatch", 1024, "max queries per shared scan")
	flag.DurationVar(&cfg.window, "window", 2*time.Millisecond, "batching window")
	flag.DurationVar(&cfg.deadline, "deadline", 0, "per-request deadline (0 = none)")
	flag.StringVar(&cfg.mix, "mix", "scan", "workload mix: scan or mixed")
	flag.Int64Var(&cfg.memBudget, "mem-budget", 0, "server-wide memory budget in bytes for joins and grouped aggregations (0 = ungoverned)")
	flag.Int64Var(&cfg.memQuery, "mem-query", 0, "default per-query reservation in bytes (0 = budget/4)")
	flag.BoolVar(&cfg.oomKill, "oom-kill", false, "naive mode: allocate past the budget, then kill the query (instead of spilling)")
	flag.Int64Var(&cfg.faultSeed, "fault-seed", 1, "fault injector seed")
	flag.Float64Var(&cfg.panicProb, "panic-prob", 0, "per-task injected panic probability")
	flag.Float64Var(&cfg.transientProb, "transient-prob", 0, "per-task injected transient-failure probability")
	flag.Float64Var(&cfg.stragglerProb, "straggler-prob", 0, "per-worker straggler probability")
	flag.Float64Var(&cfg.stragglerSkew, "straggler-skew", 8, "cycle multiplier for straggling workers")
	flag.Float64Var(&cfg.allocFailProb, "alloc-fail-prob", 0, "per-charge injected allocation-failure probability")
	flag.IntVar(&cfg.retries, "retries", 0, "morsel-level retries per request (0 = retry-free)")
	flag.DurationVar(&cfg.backoff, "backoff", 200*time.Microsecond, "base retry backoff (doubles per attempt, jittered)")
	flag.IntVar(&cfg.breaker, "breaker", 0, "consecutive failures tripping the circuit breaker (0 = no breaker)")
	flag.DurationVar(&cfg.cooldown, "cooldown", 10*time.Millisecond, "breaker cooldown before a half-open probe")
	flag.StringVar(&cfg.listen, "listen", "", "serve /metrics, /debug/vars, and /debug/pprof on this address during the run (empty = off)")
	flag.IntVar(&cfg.traceEvery, "trace", 0, "trace every Nth request and dump span trees after the report (0 = off)")
	flag.Parse()

	// SIGINT/SIGTERM stops the client cohort; admitted work still drains
	// through Server.Close before the report prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r, err := run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r.print(os.Stdout, cfg)
}
