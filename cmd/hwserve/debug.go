package main

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"hwstar/internal/metrics"
)

// debugReg holds the registry the debug endpoints read. A process-wide slot
// (rather than a closure) lets expvar publication happen exactly once even
// though tests build many muxes for many servers.
var (
	debugReg    atomic.Pointer[metrics.Registry]
	publishOnce sync.Once
)

// newDebugMux builds the observability endpoint set for one server:
//
//	/metrics       — Prometheus text exposition of the server's registry
//	/debug/vars    — expvar JSON (Go runtime stats plus the "hwserve" map)
//	/debug/pprof/  — the standard pprof profile handlers
//
// The mux is plain net/http, so tests drive it with httptest and the binary
// mounts it on -listen.
func newDebugMux(reg *metrics.Registry) *http.ServeMux {
	debugReg.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("hwserve", expvar.Func(func() any {
			r := debugReg.Load()
			if r == nil {
				return nil
			}
			snap := r.Snapshot()
			return map[string]any{"counters": snap.Counters, "gauges": snap.Gauges}
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
