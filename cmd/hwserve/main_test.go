package main

import (
	"context"
	"strings"
	"testing"
	"time"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Clients = 8
	cfg.Requests = 3
	cfg.Rows = 1 << 14
	cfg.Queue = 64
	cfg.MaxBatch = 64
	cfg.Window = Duration(time.Millisecond)
	return cfg
}

func TestRunScanMix(t *testing.T) {
	cfg := smallConfig()
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(cfg.Clients * cfg.Requests)
	if r.completed != total || r.rejected != 0 || r.deadlined != 0 {
		t.Fatalf("completed %d of %d (rejected %d, deadlined %d)", r.completed, total, r.rejected, r.deadlined)
	}
	if r.batches == 0 || r.batchMax < 1 {
		t.Fatalf("no batches recorded: %+v", r)
	}
	if r.meanMcyc <= 0 {
		t.Fatalf("no modeled cost: %+v", r)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	for _, want := range []string{"completed", "scan batches", "Mcycles/query"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunVectorized(t *testing.T) {
	cfg := smallConfig()
	cfg.Vectorized = true
	cfg.VecAdaptive = true
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.completed != int64(cfg.Clients*cfg.Requests) {
		t.Fatalf("vectorized run lost requests: %+v", r)
	}
	if !r.health.Vectorized || r.health.VecPasses == 0 {
		t.Fatalf("vectorized path never ran: %+v", r.health)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	if !strings.Contains(sb.String(), "vectorized") {
		t.Fatalf("report missing vectorized line:\n%s", sb.String())
	}
}

func TestRunMixedMix(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = "mixed"
	cfg.Deadline = Duration(time.Minute) // generous: nothing should miss it
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.completed != int64(cfg.Clients*cfg.Requests) {
		t.Fatalf("mixed run lost requests: %+v", r)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := smallConfig()
	cfg.Machine = "nope"
	if _, err := run(context.Background(), cfg); err == nil {
		t.Fatal("unknown machine should fail")
	}
	cfg = smallConfig()
	cfg.Mix = "bogus"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown mix should fail validation")
	}
}

// TestRunWithFaults arms the injector with transient failures and panics and
// checks the resilient configuration still completes everything, with the
// health summary in the report.
func TestRunWithFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.FaultSeed = 7
	cfg.TransientProb = 0.05
	cfg.PanicProb = 0.01
	cfg.Retries = 4
	cfg.Backoff = Duration(20 * time.Microsecond)
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.completed != int64(cfg.Clients*cfg.Requests) {
		t.Fatalf("faulty run lost requests: %+v", r)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	for _, want := range []string{"health", "faults injected:"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestRunInterrupted cancels the run context up front: clients must stop
// submitting, Close must still drain, and the report must say so.
func TestRunInterrupted(t *testing.T) {
	cfg := smallConfig()
	cfg.Requests = 100
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.interrupted {
		t.Fatalf("report not marked interrupted: %+v", r)
	}
	if r.completed != 0 {
		t.Fatalf("cancelled-before-start run completed %d requests", r.completed)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	if !strings.Contains(sb.String(), "interrupted") {
		t.Fatalf("report missing interruption notice:\n%s", sb.String())
	}
}
