package main

import (
	"strings"
	"testing"
	"time"
)

func smallConfig() config {
	return config{
		machineName: "server-2s8c",
		clients:     8,
		requests:    3,
		rows:        1 << 14,
		queueDepth:  64,
		maxBatch:    64,
		window:      time.Millisecond,
		mix:         "scan",
	}
}

func TestRunScanMix(t *testing.T) {
	cfg := smallConfig()
	r, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(cfg.clients * cfg.requests)
	if r.completed != total || r.rejected != 0 || r.deadlined != 0 {
		t.Fatalf("completed %d of %d (rejected %d, deadlined %d)", r.completed, total, r.rejected, r.deadlined)
	}
	if r.batches == 0 || r.batchMax < 1 {
		t.Fatalf("no batches recorded: %+v", r)
	}
	if r.meanMcyc <= 0 {
		t.Fatalf("no modeled cost: %+v", r)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	for _, want := range []string{"completed", "scan batches", "Mcycles/query"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunMixedMix(t *testing.T) {
	cfg := smallConfig()
	cfg.mix = "mixed"
	cfg.deadline = time.Minute // generous: nothing should miss it
	r, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.completed != int64(cfg.clients*cfg.requests) {
		t.Fatalf("mixed run lost requests: %+v", r)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := smallConfig()
	cfg.machineName = "nope"
	if _, err := run(cfg); err == nil {
		t.Fatal("unknown machine should fail")
	}
	cfg = smallConfig()
	cfg.mix = "bogus"
	if _, err := run(cfg); err == nil {
		t.Fatal("unknown mix should fail")
	}
}
