package main

import (
	"context"
	"strings"
	"testing"
	"time"
)

func smallConfig() config {
	return config{
		machineName: "server-2s8c",
		clients:     8,
		requests:    3,
		rows:        1 << 14,
		queueDepth:  64,
		maxBatch:    64,
		window:      time.Millisecond,
		mix:         "scan",
	}
}

func TestRunScanMix(t *testing.T) {
	cfg := smallConfig()
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(cfg.clients * cfg.requests)
	if r.completed != total || r.rejected != 0 || r.deadlined != 0 {
		t.Fatalf("completed %d of %d (rejected %d, deadlined %d)", r.completed, total, r.rejected, r.deadlined)
	}
	if r.batches == 0 || r.batchMax < 1 {
		t.Fatalf("no batches recorded: %+v", r)
	}
	if r.meanMcyc <= 0 {
		t.Fatalf("no modeled cost: %+v", r)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	for _, want := range []string{"completed", "scan batches", "Mcycles/query"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunMixedMix(t *testing.T) {
	cfg := smallConfig()
	cfg.mix = "mixed"
	cfg.deadline = time.Minute // generous: nothing should miss it
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.completed != int64(cfg.clients*cfg.requests) {
		t.Fatalf("mixed run lost requests: %+v", r)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := smallConfig()
	cfg.machineName = "nope"
	if _, err := run(context.Background(), cfg); err == nil {
		t.Fatal("unknown machine should fail")
	}
	cfg = smallConfig()
	cfg.mix = "bogus"
	if _, err := run(context.Background(), cfg); err == nil {
		t.Fatal("unknown mix should fail")
	}
}

// TestRunWithFaults arms the injector with transient failures and panics and
// checks the resilient configuration still completes everything, with the
// health summary in the report.
func TestRunWithFaults(t *testing.T) {
	cfg := smallConfig()
	cfg.faultSeed = 7
	cfg.transientProb = 0.05
	cfg.panicProb = 0.01
	cfg.retries = 4
	cfg.backoff = 20 * time.Microsecond
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.completed != int64(cfg.clients*cfg.requests) {
		t.Fatalf("faulty run lost requests: %+v", r)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	for _, want := range []string{"health", "faults injected:"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestRunInterrupted cancels the run context up front: clients must stop
// submitting, Close must still drain, and the report must say so.
func TestRunInterrupted(t *testing.T) {
	cfg := smallConfig()
	cfg.requests = 100
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.interrupted {
		t.Fatalf("report not marked interrupted: %+v", r)
	}
	if r.completed != 0 {
		t.Fatalf("cancelled-before-start run completed %d requests", r.completed)
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	if !strings.Contains(sb.String(), "interrupted") {
		t.Fatalf("report missing interruption notice:\n%s", sb.String())
	}
}
