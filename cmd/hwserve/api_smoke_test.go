package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hwstar"
	v1 "hwstar/internal/frontend/v1"
)

// syncBuffer is a bytes.Buffer safe for the serveAPI goroutine to write
// while the test polls it for the bound address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var (
	apiAddrRe  = regexp.MustCompile(`/v1 API on (\S+)`)
	apiReadyRe = regexp.MustCompile(`durable store \S+ ready \(manifest v(\d+)`)
)

// TestServeAPISmoke is the CI boot smoke: start hwserve in server mode with
// two tenants — one interactive, one burst-capped batch — then assert over
// real HTTP that the interactive tenant completes all its work while the
// noisy tenant is deterministically rate-limited, and that the governance
// split shows up in /v1/health and /metrics.
func TestServeAPISmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 1 << 14
	cfg.ServeAPI = "127.0.0.1:0"
	cfg.Tenants = []hwstar.TenantConfig{
		{ID: "int-a", Key: "ka"},
		{ID: "noisy-b", Key: "kb", Priority: "batch", Burst: 3, MaxConcurrent: 1},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- serveAPI(ctx, cfg, &out) }()
	defer func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serveAPI returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("serveAPI did not shut down")
		}
	}()

	// Wait for the listener line to learn the bound port.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := apiAddrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	openSession := func(tenant, key string) string {
		t.Helper()
		body, _ := json.Marshal(v1.SessionRequest{Tenant: tenant, Key: key})
		resp, err := http.Post(base+"/v1/session", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr v1.SessionResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != 200 {
			t.Fatalf("session open for %s: HTTP %d (err %v)", tenant, resp.StatusCode, err)
		}
		return sr.Token
	}
	query := func(token string) int {
		t.Helper()
		body, _ := json.Marshal(v1.QueryRequest{
			Op: v1.OpScan, Table: "facts",
			Scan: &v1.ScanArgs{FilterCol: 0, Lo: 0, Hi: 50000, AggCol: 1},
		})
		req, _ := http.NewRequest("POST", base+"/v1/query", bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&sink)
		return resp.StatusCode
	}

	intTok := openSession("int-a", "ka")
	noisyTok := openSession("noisy-b", "kb")

	// The noisy tenant floods: exactly Burst=3 queries are admitted, the
	// rest refused with 429 — while every interactive query keeps landing.
	const noisyFlood = 10
	noisyOK, noisyLimited := 0, 0
	for i := 0; i < noisyFlood; i++ {
		switch status := query(noisyTok); status {
		case 200:
			noisyOK++
		case http.StatusTooManyRequests:
			noisyLimited++
		default:
			t.Fatalf("noisy query %d: HTTP %d", i, status)
		}
		if status := query(intTok); status != 200 {
			t.Fatalf("interactive query %d refused alongside the flood: HTTP %d", i, status)
		}
	}
	if noisyOK != 3 || noisyLimited != noisyFlood-3 {
		t.Fatalf("noisy governance: %d ok, %d limited; want exactly 3 and %d", noisyOK, noisyLimited, noisyFlood-3)
	}

	// The isolation is visible in the health breakdown...
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h v1.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || resp.StatusCode != 200 {
		t.Fatalf("health: HTTP %d (err %v)", resp.StatusCode, err)
	}
	if got := h.Tenants["int-a"]; got.Completed != noisyFlood || got.RateLimited != 0 {
		t.Fatalf("interactive tenant health: %+v", got)
	}
	if got := h.Tenants["noisy-b"]; got.Completed != 3 || got.RateLimited != int64(noisyFlood-3) {
		t.Fatalf("noisy tenant health: %+v", got)
	}

	// ...and in the Prometheus exposition (names normalized: '.'/'-' → '_').
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("frontend_tenant_noisy_b_rate_limited %d", noisyFlood-3)
	if !strings.Contains(mbuf.String(), want) {
		t.Fatalf("/metrics missing %q", want)
	}
}

// TestServeAPIDurableRestart boots server mode twice over one -data-dir:
// the first instance registers and flushes its tables on shutdown, the
// second replays them at boot and answers the same query — the operator's
// restart story end to end, visible in the /v1 health durability fields.
func TestServeAPIDurableRestart(t *testing.T) {
	dataDir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Rows = 1 << 12
	cfg.ServeAPI = "127.0.0.1:0"
	cfg.DataDir = dataDir
	cfg.Tenants = []hwstar.TenantConfig{{ID: "a", Key: "ka"}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	// boot starts one serveAPI instance and waits for the listener line and
	// the durable-ready line; stop shuts it down (flushing the store).
	boot := func() (base string, stop func()) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		var out syncBuffer
		done := make(chan error, 1)
		go func() { done <- serveAPI(ctx, cfg, &out) }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			s := out.String()
			if m := apiAddrRe.FindStringSubmatch(s); m != nil && apiReadyRe.MatchString(s) {
				base = "http://" + m[1]
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never became ready; output: %q", s)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return base, func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("serveAPI returned %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Error("serveAPI did not shut down")
			}
		}
	}
	query := func(base, token string) int {
		t.Helper()
		body, _ := json.Marshal(v1.QueryRequest{
			Op: v1.OpScan, Table: "facts",
			Scan: &v1.ScanArgs{FilterCol: 0, Lo: 0, Hi: 50000, AggCol: 1},
		})
		req, _ := http.NewRequest("POST", base+"/v1/query", bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sink json.RawMessage
		_ = json.NewDecoder(resp.Body).Decode(&sink)
		return resp.StatusCode
	}
	session := func(base string) string {
		t.Helper()
		body, _ := json.Marshal(v1.SessionRequest{Tenant: "a", Key: "ka"})
		resp, err := http.Post(base+"/v1/session", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr v1.SessionResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil || resp.StatusCode != 200 {
			t.Fatalf("session open: HTTP %d (err %v)", resp.StatusCode, err)
		}
		return sr.Token
	}

	// First life: fresh directory, query, shut down (Close flushes).
	base, stop := boot()
	if status := query(base, session(base)); status != 200 {
		t.Fatalf("first-life query: HTTP %d", status)
	}
	stop()

	// Second life: the same directory replays; the query works again and
	// health reports the recovery.
	base, stop = boot()
	defer stop()
	if status := query(base, session(base)); status != 200 {
		t.Fatalf("post-restart query: HTTP %d", status)
	}
	resp, err := http.Get(base + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h v1.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || resp.StatusCode != 200 {
		t.Fatalf("health: HTTP %d (err %v)", resp.StatusCode, err)
	}
	if !h.Durable || h.Recovering {
		t.Fatalf("health durability flags: durable=%v recovering=%v", h.Durable, h.Recovering)
	}
	if h.StoreVersion < 1 || h.RecoveredTables < 1 {
		t.Fatalf("health recovery: store_version=%d recovered_tables=%d, want >=1 each", h.StoreVersion, h.RecoveredTables)
	}
}
