package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hwstar"
)

// TestDurationJSON pins the Duration wire forms: string in, string out,
// nanosecond numbers accepted, junk rejected.
func TestDurationJSON(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want time.Duration
		bad  bool
	}{
		{"string form", `"2ms"`, 2 * time.Millisecond, false},
		{"composite string", `"1.5s"`, 1500 * time.Millisecond, false},
		{"nanosecond number", `2000000`, 2 * time.Millisecond, false},
		{"zero", `"0s"`, 0, false},
		{"bad string", `"fortnight"`, 0, true},
		{"bad type", `{"ns": 5}`, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var d Duration
			err := json.Unmarshal([]byte(c.in), &d)
			if c.bad {
				if err == nil {
					t.Fatalf("unmarshal %s succeeded as %v", c.in, time.Duration(d))
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if time.Duration(d) != c.want {
				t.Fatalf("unmarshal %s = %v, want %v", c.in, time.Duration(d), c.want)
			}
			// Round-trip: the marshaled form re-parses to the same value.
			out, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			var d2 Duration
			if err := json.Unmarshal(out, &d2); err != nil || d2 != d {
				t.Fatalf("round-trip %s -> %s -> %v (err %v)", c.in, out, time.Duration(d2), err)
			}
		})
	}
}

// writeConfig drops a JSON config file into a test temp dir.
func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "server.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseConfigFlagsOnly pins the no-file path: defaults plus explicit
// flags, including the legacy alias names.
func TestParseConfigFlagsOnly(t *testing.T) {
	cfg, printOnly, err := parseConfig([]string{
		"-clients", "8", "-maxbatch", "32", "-trace", "5", "-window", "3ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	if printOnly {
		t.Fatal("printOnly without -print-config")
	}
	want := DefaultConfig()
	want.Clients = 8
	want.MaxBatch = 32
	want.TraceEvery = 5
	want.Window = Duration(3 * time.Millisecond)
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("cfg = %+v\nwant %+v", cfg, want)
	}
}

// TestParseConfigPrecedence pins defaults < file < explicit flags, with
// aliases overriding the canonical field they share.
func TestParseConfigPrecedence(t *testing.T) {
	path := writeConfig(t, `{
		"clients": 16,
		"rows": 4096,
		"max_batch": 64,
		"window": "4ms",
		"deadline": 2000000,
		"tenants": [{"id": "a", "key": "ka"}]
	}`)
	cfg, _, err := parseConfig([]string{
		"-config", path,
		"-clients", "99", // explicit flag beats the file
		"-maxbatch", "128", // alias beats the file's canonical field
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Clients != 99 {
		t.Fatalf("Clients = %d, want flag override 99", cfg.Clients)
	}
	if cfg.MaxBatch != 128 {
		t.Fatalf("MaxBatch = %d, want alias override 128", cfg.MaxBatch)
	}
	if cfg.Rows != 4096 {
		t.Fatalf("Rows = %d, want file value 4096", cfg.Rows)
	}
	if cfg.Window != Duration(4*time.Millisecond) {
		t.Fatalf("Window = %v, want file value 4ms", time.Duration(cfg.Window))
	}
	if cfg.Deadline != Duration(2*time.Millisecond) {
		t.Fatalf("Deadline = %v, want numeric-ns file value 2ms", time.Duration(cfg.Deadline))
	}
	if cfg.Queue != DefaultConfig().Queue {
		t.Fatalf("Queue = %d, want untouched default %d", cfg.Queue, DefaultConfig().Queue)
	}
	if len(cfg.Tenants) != 1 || cfg.Tenants[0].ID != "a" {
		t.Fatalf("Tenants = %+v, want the file's tenant a", cfg.Tenants)
	}
}

// TestLoadConfigFileStrict pins typo-catching: unknown fields are errors,
// not silently dropped.
func TestLoadConfigFileStrict(t *testing.T) {
	path := writeConfig(t, `{"cleints": 8}`)
	c := DefaultConfig()
	if err := loadConfigFile(path, &c); err == nil {
		t.Fatal("misspelled field accepted")
	}
	if _, _, err := parseConfig([]string{"-config", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing config file accepted")
	}
}

// TestPrintConfigRoundTrips pins the -print-config contract: the printed
// JSON is exactly the format -config accepts, and re-loading it reproduces
// the same effective Config.
func TestPrintConfigRoundTrips(t *testing.T) {
	cfg, printOnly, err := parseConfig([]string{
		"-print-config",
		"-clients", "3",
		"-window", "7ms",
		"-serve-api", "127.0.0.1:0",
		"-data-dir", "/tmp/hwserve-data",
		"-checkpoint-interval", "250ms",
		"-hot-bytes", "1048576",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !printOnly {
		t.Fatal("-print-config not reported")
	}
	cfg.Tenants = []hwstar.TenantConfig{{ID: "a", Key: "ka", Priority: "batch", Burst: 4}}

	var buf bytes.Buffer
	if err := cfg.Print(&buf); err != nil {
		t.Fatal(err)
	}
	path := writeConfig(t, buf.String())
	reloaded := DefaultConfig()
	if err := loadConfigFile(path, &reloaded); err != nil {
		t.Fatalf("printed config does not re-load: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(cfg, reloaded) {
		t.Fatalf("round-trip drift:\nprinted  %+v\nreloaded %+v", cfg, reloaded)
	}
	if reloaded.CheckpointInterval != Duration(250*time.Millisecond) {
		t.Fatalf("CheckpointInterval = %v after round-trip, want 250ms", time.Duration(reloaded.CheckpointInterval))
	}
}

// TestStorageConfigPrecedence pins the storage fields through the
// defaults < file < explicit flags chain: -data-dir on the command line
// overrides the file's directory while the file's checkpoint interval and
// hot budget stay in force.
func TestStorageConfigPrecedence(t *testing.T) {
	path := writeConfig(t, `{
		"data_dir": "/var/lib/hwserve",
		"checkpoint_interval": "5s",
		"hot_bytes": 4096
	}`)
	cfg, _, err := parseConfig([]string{
		"-config", path,
		"-data-dir", "/mnt/fast/hwserve",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DataDir != "/mnt/fast/hwserve" {
		t.Fatalf("DataDir = %q, want flag override /mnt/fast/hwserve", cfg.DataDir)
	}
	if cfg.CheckpointInterval != Duration(5*time.Second) {
		t.Fatalf("CheckpointInterval = %v, want file value 5s", time.Duration(cfg.CheckpointInterval))
	}
	if cfg.HotBytes != 4096 {
		t.Fatalf("HotBytes = %d, want file value 4096", cfg.HotBytes)
	}
	if def := DefaultConfig(); def.DataDir != "" || def.CheckpointInterval != 0 || def.HotBytes != 0 {
		t.Fatalf("storage defaults not off: %+v", def)
	}
}

// TestValidate pins the rejection rules the run loop depends on.
func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"defaults", func(c *Config) {}, true},
		{"unknown machine", func(c *Config) { c.Machine = "abacus" }, false},
		{"bad mix", func(c *Config) { c.Mix = "shaken" }, false},
		{"zero clients", func(c *Config) { c.Clients = 0 }, false},
		{"zero rows", func(c *Config) { c.Rows = 0 }, false},
		{"serve_api without tenants", func(c *Config) { c.ServeAPI = ":0" }, false},
		{"serve_api with tenants", func(c *Config) {
			c.ServeAPI = ":0"
			c.Tenants = []hwstar.TenantConfig{{ID: "a", Key: "k"}}
		}, true},
		{"vec_adaptive without vectorized", func(c *Config) { c.VecAdaptive = true }, false},
		{"vec knobs without vectorized", func(c *Config) { c.VecBatchWidth = 8 }, false},
		{"vectorized with knobs", func(c *Config) {
			c.Vectorized = true
			c.VecAdaptive = true
			c.VecMorselRows = 8192
			c.VecBatchWidth = 16
		}, true},
		{"checkpoint interval without data dir", func(c *Config) {
			c.CheckpointInterval = Duration(time.Second)
		}, false},
		{"hot bytes without data dir", func(c *Config) { c.HotBytes = 1 }, false},
		{"negative checkpoint interval", func(c *Config) {
			c.DataDir = "d"
			c.CheckpointInterval = Duration(-time.Second)
		}, false},
		{"data dir with interval and budget", func(c *Config) {
			c.DataDir = "d"
			c.CheckpointInterval = Duration(time.Second)
			c.HotBytes = 1 << 20
		}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := DefaultConfig()
			c.mutate(&cfg)
			err := cfg.Validate()
			if c.ok && err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
