package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"hwstar"
	"hwstar/internal/hw"
)

// buildRouter assembles the sharded serving tier (-shards > 1): cfg.Shards
// serve shards, each configured exactly like buildServer's single engine,
// behind a replicated consistent-hash router. With -data-dir every node
// owns a node-N subdirectory, so a recovered node can re-replicate lost
// stripes from the surviving replicas' durable stores. The caller closes
// the returned stores after Router.Close.
func buildRouter(ctx context.Context, cfg Config) (*hwstar.Router, *hwstar.Tracer, []*hwstar.Store, error) {
	m, ok := hw.Profiles()[cfg.Machine]
	if !ok {
		return nil, nil, nil, fmt.Errorf("unknown machine %q", cfg.Machine)
	}
	shardOpts := hwstar.ServerOptions{
		QueueDepth:       cfg.Queue,
		MaxBatch:         cfg.MaxBatch,
		BatchWindow:      time.Duration(cfg.Window),
		MaxRetries:       cfg.Retries,
		RetryBackoff:     time.Duration(cfg.Backoff),
		BreakerThreshold: cfg.Breaker,
		BreakerCooldown:  time.Duration(cfg.Cooldown),
		Vectorized:       cfg.Vectorized,
		VecMorselRows:    cfg.VecMorselRows,
		VecBatchWidth:    cfg.VecBatchWidth,
		VecAdaptive:      cfg.VecAdaptive,
	}
	ropts := hwstar.RouterOptions{
		Shards:   cfg.Shards,
		Replicas: cfg.Replicas,
	}
	if cfg.MemBudget > 0 {
		// Federated budgets: the router admits against the cluster-wide
		// budget while each shard governs its even share.
		ropts.Memory = hwstar.MemoryConfig{BudgetBytes: cfg.MemBudget, PerQueryBytes: cfg.MemQuery}
		shardOpts.Memory = hwstar.MemoryConfig{
			BudgetBytes:   cfg.MemBudget / int64(cfg.Shards),
			PerQueryBytes: cfg.MemQuery,
			KillOnOverage: cfg.OOMKill,
		}
	}
	if cfg.faulty() || cfg.NodeLossProb > 0 {
		inj := hwstar.NewFaultInjector(hwstar.FaultConfig{
			Seed:          cfg.FaultSeed,
			PanicProb:     cfg.PanicProb,
			TransientProb: cfg.TransientProb,
			StragglerProb: cfg.StragglerProb,
			StragglerSkew: cfg.StragglerSkew,
			AllocFailProb: cfg.AllocFailProb,
			NodeLossProb:  cfg.NodeLossProb,
		})
		ropts.Faults = inj
		if cfg.faulty() {
			shardOpts.Faults = inj
			shardOpts.IsolatePanics = true
			shardOpts.StragglerThreshold = 3
		}
	}
	var tracer *hwstar.Tracer
	if cfg.TraceEvery > 0 {
		tracer = hwstar.NewTracer(hwstar.TraceConfig{Capacity: 16, SampleEvery: cfg.TraceEvery})
		shardOpts.Trace = tracer
	}
	var stores []*hwstar.Store
	closeStores := func() {
		for _, st := range stores {
			st.Close()
		}
	}
	if cfg.DataDir != "" {
		for i := 0; i < cfg.Shards; i++ {
			st, err := hwstar.OpenStore(hwstar.StoreOptions{
				Dir:      filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", i)),
				Machine:  m,
				HotBytes: cfg.HotBytes,
			})
			if err != nil {
				closeStores()
				return nil, nil, nil, err
			}
			stores = append(stores, st)
		}
		ropts.Stores = stores
	}
	ropts.Shard = shardOpts
	r, err := hwstar.NewRouter(ctx, m, ropts)
	if err != nil {
		closeStores()
		return nil, nil, nil, err
	}
	return r, tracer, stores, nil
}

// runChaos drives the router's seeded kill/recover loop until stop closes:
// each tick first revives every dead node (re-replicating its lost stripes
// from the surviving replicas), then draws fresh kills. Returns the total
// kill count.
func runChaos(ctx context.Context, r *hwstar.Router, stop <-chan struct{}) int {
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	kills := 0
	for {
		select {
		case <-ctx.Done():
			return kills
		case <-stop:
			return kills
		case <-ticker.C:
			for _, nh := range r.ClusterHealth().Nodes {
				if !nh.Alive {
					if err := r.RecoverNode(ctx, nh.ID); err != nil {
						return kills
					}
				}
			}
			kills += len(r.ChaosTick(ctx))
		}
	}
}

// serveAPICluster is server mode behind a sharded tier: the same /v1 API
// and debug endpoints as serveAPI, fronting a Router instead of a single
// Server. The wire protocol is identical; the only visible difference is
// that total replica loss surfaces as partial=true responses instead of
// errors.
func serveAPICluster(ctx context.Context, cfg Config, out io.Writer) error {
	router, _, stores, err := buildRouter(ctx, cfg)
	if err != nil {
		return err
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	cols := [][]int64{
		hwstar.GenUniform(41, cfg.Rows, 100000),
		hwstar.GenUniform(42, cfg.Rows, 1000),
	}
	if err := router.Register("facts", cols); err != nil {
		return err
	}
	lineitem := hwstar.GenLineItem(46, cfg.Rows)

	fe, err := hwstar.NewFrontend(hwstar.FrontendConfig{
		Backend:      router,
		Tenants:      cfg.Tenants,
		SessionTTL:   time.Duration(cfg.SessionTTL),
		QueryTimeout: time.Duration(cfg.QueryTimeout),
		Lineitems:    map[string]*hwstar.Table{"lineitem": lineitem},
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", fe.Handler())
	debug := newDebugMux(router.Metrics())
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)

	ln, err := net.Listen("tcp", cfg.ServeAPI)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "hwserve: /v1 API on %s (%d shards x %d replicas, %d tenants, tables: facts, lineitem)\n",
		ln.Addr(), cfg.Shards, router.ClusterHealth().Replicas, len(cfg.Tenants))

	chaosStop := make(chan struct{})
	chaosKills := make(chan int, 1)
	if cfg.NodeLossProb > 0 {
		go func() { chaosKills <- runChaos(ctx, router, chaosStop) }()
	} else {
		close(chaosKills)
	}

	hs := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	close(chaosStop)
	if kills, ok := <-chaosKills; ok {
		ch := router.ClusterHealth()
		fmt.Fprintf(out, "hwserve: chaos killed %d nodes (failovers %d, hedges %d, partials %d, re-replications %d)\n",
			kills, ch.Failovers, ch.Hedges, ch.Partials, ch.Rereplications)
	}
	fmt.Fprintln(out, "hwserve: draining admitted work")
	return router.Close()
}
