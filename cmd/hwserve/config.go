package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hwstar"
	"hwstar/internal/hw"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("2ms", "1.5s") and unmarshals from either a string or a nanosecond
// number, so config files read naturally.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "200us"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", x, err)
		}
		*d = Duration(parsed)
		return nil
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	default:
		return fmt.Errorf("bad duration value %v (want string or number)", v)
	}
}

// Config is hwserve's whole configuration surface: one struct, loadable from
// a JSON file (-config server.json) with individual flags overriding file
// values. Field JSON tags are the file format; the flag set in bindFlags is
// the command-line format; DefaultConfig is the single source of defaults
// for both.
type Config struct {
	// Machine and synthetic-workload shape (load-generator mode).
	Machine  string `json:"machine"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`
	Rows     int    `json:"rows"`
	Mix      string `json:"mix"` // "scan" or "mixed"

	// Serving policy.
	Queue    int      `json:"queue"`
	MaxBatch int      `json:"max_batch"`
	Window   Duration `json:"window"`
	Deadline Duration `json:"deadline"`

	// Sharded serving tier: Shards > 1 runs that many serve.Server shards
	// behind a consistent-hash router with Replicas-way replication,
	// replica failover, and hedged dispatch (see internal/shard). Shards
	// 0/1 is the classic single-server mode. With -data-dir each shard
	// gets its own node-N subdirectory, so node recovery re-replicates
	// from the surviving replicas' durable stores.
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`

	// Vectorized execution: Vectorized routes shared scans through the
	// batch-at-a-time pass over FOR/RLE-compressed columns; the Vec* knobs
	// seed its morsel size and query-group width, and VecAdaptive lets the
	// online controller retune both from runtime feedback.
	Vectorized    bool `json:"vectorized"`
	VecMorselRows int  `json:"vec_morsel_rows"`
	VecBatchWidth int  `json:"vec_batch_width"`
	VecAdaptive   bool `json:"vec_adaptive"`

	// Memory governance (zero budget disables the governor).
	MemBudget int64 `json:"mem_budget_bytes"`
	MemQuery  int64 `json:"mem_query_bytes"`
	OOMKill   bool  `json:"oom_kill"`

	// Fault injection (zero probabilities disable the injector).
	FaultSeed     int64   `json:"fault_seed"`
	PanicProb     float64 `json:"panic_prob"`
	TransientProb float64 `json:"transient_prob"`
	StragglerProb float64 `json:"straggler_prob"`
	StragglerSkew float64 `json:"straggler_skew"`
	AllocFailProb float64 `json:"alloc_fail_prob"`
	// NodeLossProb arms the router's chaos loop (needs Shards > 1): each
	// tick draws a seeded node kill per live node, never killing the last
	// one, and recovers dead nodes on the following tick.
	NodeLossProb float64 `json:"node_loss_prob"`

	// Resilience policy.
	Retries  int      `json:"retries"`
	Backoff  Duration `json:"backoff"`
	Breaker  int      `json:"breaker"`
	Cooldown Duration `json:"cooldown"`

	// Durable storage (both modes): DataDir arms the checkpointed store —
	// the server replays committed state at boot and flushes on shutdown.
	// CheckpointInterval adds background checkpoints; HotBytes caps the
	// DRAM-resident hot set (0 = everything hot, nothing tiered to flash).
	DataDir            string   `json:"data_dir"`
	CheckpointInterval Duration `json:"checkpoint_interval"`
	HotBytes           int64    `json:"hot_bytes"`

	// Observability.
	Listen     string `json:"listen"`
	TraceEvery int    `json:"trace_every"`

	// Network API (server mode): ServeAPI mounts the /v1 multi-tenant API
	// plus the debug endpoints on the given address and serves until
	// SIGINT/SIGTERM instead of running the synthetic client cohort.
	ServeAPI     string                `json:"serve_api"`
	SessionTTL   Duration              `json:"session_ttl"`
	QueryTimeout Duration              `json:"query_timeout"`
	Tenants      []hwstar.TenantConfig `json:"tenants"`
}

// DefaultConfig returns the defaults every run starts from.
func DefaultConfig() Config {
	return Config{
		Machine:       "server-2s8c",
		Clients:       64,
		Requests:      10,
		Rows:          1 << 20,
		Mix:           "scan",
		Queue:         256,
		MaxBatch:      1024,
		Window:        Duration(2 * time.Millisecond),
		FaultSeed:     1,
		StragglerSkew: 8,
		Backoff:       Duration(200 * time.Microsecond),
		Cooldown:      Duration(10 * time.Millisecond),
		SessionTTL:    Duration(time.Hour),
	}
}

// Validate rejects configurations the run loop cannot execute. Tenant
// validation is left to frontend.New, which owns those rules.
func (c *Config) Validate() error {
	if _, ok := hw.Profiles()[c.Machine]; !ok {
		return fmt.Errorf("unknown machine %q", c.Machine)
	}
	if c.Mix != "scan" && c.Mix != "mixed" {
		return fmt.Errorf("unknown mix %q (want scan or mixed)", c.Mix)
	}
	if c.Clients < 1 || c.Requests < 0 || c.Rows < 1 {
		return fmt.Errorf("clients/requests/rows out of range: %d/%d/%d", c.Clients, c.Requests, c.Rows)
	}
	if !c.Vectorized {
		if c.VecAdaptive {
			return fmt.Errorf("-vec-adaptive needs -vectorized")
		}
		if c.VecMorselRows > 0 || c.VecBatchWidth > 0 {
			return fmt.Errorf("-vec-morsel-rows/-vec-batch-width need -vectorized")
		}
	}
	if c.ServeAPI != "" && len(c.Tenants) == 0 {
		return fmt.Errorf("-serve-api needs at least one tenant (configure tenants in -config)")
	}
	if c.Shards < 0 || c.Replicas < 0 {
		return fmt.Errorf("negative shards/replicas: %d/%d", c.Shards, c.Replicas)
	}
	if c.Shards <= 1 {
		if c.Replicas > 1 {
			return fmt.Errorf("-replicas %d needs -shards > 1", c.Replicas)
		}
		if c.NodeLossProb > 0 {
			return fmt.Errorf("-node-loss-prob needs -shards > 1")
		}
	}
	if c.Replicas > c.Shards && c.Shards > 1 {
		return fmt.Errorf("-replicas %d exceeds -shards %d", c.Replicas, c.Shards)
	}
	if c.DataDir == "" {
		if c.CheckpointInterval > 0 {
			return fmt.Errorf("-checkpoint-interval needs -data-dir")
		}
		if c.HotBytes > 0 {
			return fmt.Errorf("-hot-bytes needs -data-dir")
		}
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("negative checkpoint interval %s", time.Duration(c.CheckpointInterval))
	}
	return nil
}

func (c *Config) faulty() bool {
	return c.PanicProb > 0 || c.TransientProb > 0 || c.StragglerProb > 0 || c.AllocFailProb > 0
}

// Print dumps the effective configuration as indented JSON — the exact
// format -config accepts, so `-print-config > server.json` round-trips.
func (c *Config) Print(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// loadConfigFile overlays path's JSON onto *c (strict: unknown fields are
// errors, catching typos rather than silently ignoring them).
func loadConfigFile(path string, c *Config) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(c); err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}
	return nil
}

// bindFlags registers every flag against fields of cfg and returns the
// alias→canonical flag-name map. Where a flag predates the Config redesign
// under a different name ("maxbatch", "trace"), both names bind to the same
// field; the old name is an alias kept for one release.
func bindFlags(fs *flag.FlagSet, cfg *Config) map[string]string {
	fs.StringVar(&cfg.Machine, "machine", cfg.Machine, "machine profile name")
	fs.IntVar(&cfg.Clients, "clients", cfg.Clients, "concurrent clients")
	fs.IntVar(&cfg.Requests, "requests", cfg.Requests, "requests per client")
	fs.IntVar(&cfg.Rows, "rows", cfg.Rows, "fact table rows")
	fs.StringVar(&cfg.Mix, "mix", cfg.Mix, "workload mix: scan or mixed")
	fs.IntVar(&cfg.Queue, "queue", cfg.Queue, "intake queue depth")
	fs.IntVar(&cfg.MaxBatch, "max-batch", cfg.MaxBatch, "max queries per shared scan")
	fs.IntVar(&cfg.MaxBatch, "maxbatch", cfg.MaxBatch, "alias for -max-batch")
	fs.DurationVar((*time.Duration)(&cfg.Window), "window", time.Duration(cfg.Window), "batching window")
	fs.DurationVar((*time.Duration)(&cfg.Deadline), "deadline", time.Duration(cfg.Deadline), "per-request deadline (0 = none)")
	fs.IntVar(&cfg.Shards, "shards", cfg.Shards, "shard count of the replicated serving tier (0 or 1 = single server)")
	fs.IntVar(&cfg.Replicas, "replicas", cfg.Replicas, "replicas per partition in the sharded tier (0 = default 2; needs -shards > 1)")
	fs.BoolVar(&cfg.Vectorized, "vectorized", cfg.Vectorized, "execute shared scans batch-at-a-time over compressed columns (zone-map prune, block fast-sums, decode-on-demand)")
	fs.IntVar(&cfg.VecMorselRows, "vec-morsel-rows", cfg.VecMorselRows, "initial vectorized morsel size in rows, snapped to compressed-block multiples (0 = default; needs -vectorized)")
	fs.IntVar(&cfg.VecBatchWidth, "vec-batch-width", cfg.VecBatchWidth, "initial query-group width of the vectorized pass (0 = default; needs -vectorized)")
	fs.BoolVar(&cfg.VecAdaptive, "vec-adaptive", cfg.VecAdaptive, "let the online controller retune morsel size and batch width from pass feedback (needs -vectorized)")
	fs.Int64Var(&cfg.MemBudget, "mem-budget", cfg.MemBudget, "server-wide memory budget in bytes for joins and grouped aggregations (0 = ungoverned)")
	fs.Int64Var(&cfg.MemQuery, "mem-query", cfg.MemQuery, "default per-query reservation in bytes (0 = budget/4)")
	fs.BoolVar(&cfg.OOMKill, "oom-kill", cfg.OOMKill, "naive mode: allocate past the budget, then kill the query (instead of spilling)")
	fs.Int64Var(&cfg.FaultSeed, "fault-seed", cfg.FaultSeed, "fault injector seed")
	fs.Float64Var(&cfg.PanicProb, "panic-prob", cfg.PanicProb, "per-task injected panic probability")
	fs.Float64Var(&cfg.TransientProb, "transient-prob", cfg.TransientProb, "per-task injected transient-failure probability")
	fs.Float64Var(&cfg.StragglerProb, "straggler-prob", cfg.StragglerProb, "per-worker straggler probability")
	fs.Float64Var(&cfg.StragglerSkew, "straggler-skew", cfg.StragglerSkew, "cycle multiplier for straggling workers")
	fs.Float64Var(&cfg.AllocFailProb, "alloc-fail-prob", cfg.AllocFailProb, "per-charge injected allocation-failure probability")
	fs.Float64Var(&cfg.NodeLossProb, "node-loss-prob", cfg.NodeLossProb, "per-tick node-kill probability of the router's chaos loop (needs -shards > 1)")
	fs.IntVar(&cfg.Retries, "retries", cfg.Retries, "morsel-level retries per request (0 = retry-free)")
	fs.DurationVar((*time.Duration)(&cfg.Backoff), "backoff", time.Duration(cfg.Backoff), "base retry backoff (doubles per attempt, jittered)")
	fs.IntVar(&cfg.Breaker, "breaker", cfg.Breaker, "consecutive failures tripping the circuit breaker (0 = no breaker)")
	fs.DurationVar((*time.Duration)(&cfg.Cooldown), "cooldown", time.Duration(cfg.Cooldown), "breaker cooldown before a half-open probe")
	fs.StringVar(&cfg.DataDir, "data-dir", cfg.DataDir, "durable store directory: replay committed state at boot, flush on shutdown (empty = memory-only)")
	fs.DurationVar((*time.Duration)(&cfg.CheckpointInterval), "checkpoint-interval", time.Duration(cfg.CheckpointInterval), "background checkpoint period (0 = flush only on shutdown; needs -data-dir)")
	fs.Int64Var(&cfg.HotBytes, "hot-bytes", cfg.HotBytes, "DRAM budget for the store's hot set in bytes; overflow tiers to flash, loaded on first access (0 = all hot)")
	fs.StringVar(&cfg.Listen, "listen", cfg.Listen, "serve /metrics, /debug/vars, and /debug/pprof on this address during the run (empty = off)")
	fs.IntVar(&cfg.TraceEvery, "trace-every", cfg.TraceEvery, "trace every Nth request and dump span trees after the report (0 = off)")
	fs.IntVar(&cfg.TraceEvery, "trace", cfg.TraceEvery, "alias for -trace-every")
	fs.StringVar(&cfg.ServeAPI, "serve-api", cfg.ServeAPI, "serve the /v1 multi-tenant HTTP API on this address until interrupted (empty = load-generator mode)")
	fs.DurationVar((*time.Duration)(&cfg.SessionTTL), "session-ttl", time.Duration(cfg.SessionTTL), "API session token lifetime")
	fs.DurationVar((*time.Duration)(&cfg.QueryTimeout), "query-timeout", time.Duration(cfg.QueryTimeout), "per-query timeout imposed by the API (0 = none)")
	return map[string]string{"maxbatch": "max-batch", "trace": "trace-every"}
}

// parseConfig resolves the effective Config: defaults, then the -config
// file, then explicitly set flags — the conventional precedence, so a file
// captures a deployment and flags tweak one run of it.
func parseConfig(args []string) (cfg Config, printOnly bool, err error) {
	fs := flag.NewFlagSet("hwserve", flag.ContinueOnError)
	var configPath string
	fs.StringVar(&configPath, "config", "", "JSON config file (flags set explicitly override file values)")
	fs.BoolVar(&printOnly, "print-config", false, "print the effective configuration as JSON and exit")

	flagCfg := DefaultConfig()
	aliases := bindFlags(fs, &flagCfg)
	if err := fs.Parse(args); err != nil {
		return cfg, false, err
	}

	if configPath == "" {
		return flagCfg, printOnly, nil
	}
	cfg = DefaultConfig()
	if err := loadConfigFile(configPath, &cfg); err != nil {
		return cfg, false, err
	}
	// Re-apply every flag the command line set explicitly on top of the
	// file. Binding a second throwaway flag set to &cfg reuses the same
	// name→field wiring without a hand-written per-field copy table.
	override := flag.NewFlagSet("hwserve-override", flag.ContinueOnError)
	bindFlags(override, &cfg)
	fs.Visit(func(f *flag.Flag) {
		name := f.Name
		if canonical, ok := aliases[name]; ok {
			name = canonical
		}
		if g := override.Lookup(name); g != nil {
			_ = g.Value.Set(f.Value.String())
		}
	})
	return cfg, printOnly, nil
}
