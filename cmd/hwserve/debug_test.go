package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hwstar"
	"hwstar/internal/hw"
)

// TestDebugEndpoints mounts the debug mux over a live server's registry and
// checks each endpoint: /metrics speaks Prometheus text exposition,
// /debug/vars speaks expvar JSON including the hwserve counters, and
// /debug/pprof serves the profile index.
func TestDebugEndpoints(t *testing.T) {
	srv, err := hwstar.NewServer(hw.Server2S(), hwstar.ServerOptions{
		QueueDepth: 64, MaxBatch: 8, BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cols := [][]int64{
		hwstar.GenUniform(41, 1<<14, 100000),
		hwstar.GenUniform(42, 1<<14, 1000),
	}
	if err := srv.Register("facts", cols); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if _, err := srv.Submit(context.Background(), hwstar.Request{
			Op: hwstar.OpScan, Table: "facts",
			Query: hwstar.ScanQuery{FilterCol: 0, Lo: 0, Hi: 50000, AggCol: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(newDebugMux(srv.Metrics()))
	defer ts.Close()

	get := func(path string) (string, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metricsBody, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE serve_admitted counter",
		"serve_admitted 24",
		"# TYPE serve_latency_ms summary",
		`serve_latency_ms{quantile="0.99"}`,
		"serve_latency_ms_count 24",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}

	varsBody, _ := get("/debug/vars")
	var vars struct {
		Hwserve struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"hwserve"`
	}
	if err := json.Unmarshal([]byte(varsBody), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if vars.Hwserve.Counters["serve.admitted"] != 24 {
		t.Fatalf("/debug/vars hwserve counters: %+v", vars.Hwserve.Counters)
	}

	pprofBody, _ := get("/debug/pprof/")
	if !strings.Contains(pprofBody, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", pprofBody)
	}
}

// TestRunWithTracing samples every request and checks the report carries
// rendered span trees with the lifecycle stages.
func TestRunWithTracing(t *testing.T) {
	cfg := smallConfig()
	cfg.TraceEvery = 1
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.tracesStarted != uint64(cfg.Clients*cfg.Requests) {
		t.Fatalf("traced %d requests, want %d", r.tracesStarted, cfg.Clients*cfg.Requests)
	}
	if len(r.traces) == 0 {
		t.Fatal("no traces retained")
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	out := sb.String()
	for _, want := range []string{"span trees", "request:scan", "queue", "execute"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunListen smoke-tests the -listen path end to end: run() binds the
// port, serves during the run, and reports the address.
func TestRunListen(t *testing.T) {
	cfg := smallConfig()
	cfg.Listen = "127.0.0.1:0"
	r, err := run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.listenAddr == "" {
		t.Fatal("no listen address reported")
	}
	var sb strings.Builder
	r.print(&sb, cfg)
	if !strings.Contains(sb.String(), "debug endpoints served on") {
		t.Fatalf("report missing endpoint notice:\n%s", sb.String())
	}
}
