package main

import "testing"

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"64":    64,
		"64B":   64,
		"2KiB":  2 << 10,
		"64MiB": 64 << 20,
		"2GiB":  2 << 30,
		" 8KiB": 8 << 10,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "abc", "-5MiB", "0", "1.5GiB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) should fail", bad)
		}
	}
}
