// Command cachesim drives the trace-driven cache/TLB simulator standalone:
// it generates a synthetic access pattern (or reads hex addresses from
// stdin) and reports per-level hit/miss statistics on a chosen machine
// profile — a quick way to see where a working set falls in the hierarchy.
//
// Usage:
//
//	cachesim -machine server-2s8c -pattern random -n 1000000 -ws 64MiB
//	cat trace.txt | cachesim -pattern stdin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"hwstar/internal/cache"
	"hwstar/internal/hw"
)

func main() {
	machineName := flag.String("machine", "server-2s8c", "machine profile (see -machines)")
	pattern := flag.String("pattern", "seq", "access pattern: seq | random | stride | pointer | stdin")
	n := flag.Int("n", 1_000_000, "number of accesses")
	ws := flag.String("ws", "64MiB", "working set size, e.g. 256KiB, 64MiB, 2GiB")
	stride := flag.Int64("stride", 256, "stride in bytes for -pattern stride")
	seed := flag.Int64("seed", 1, "random seed")
	machines := flag.Bool("machines", false, "list machine profiles and exit")
	flag.Parse()

	if *machines {
		for name, m := range hw.Profiles() {
			fmt.Printf("%-16s %s\n", name, m)
		}
		return
	}

	m, ok := hw.Profiles()[*machineName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q (use -machines to list)\n", *machineName)
		os.Exit(2)
	}
	wsBytes, err := parseBytes(*ws)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	h := cache.FromMachine(m)
	switch *pattern {
	case "seq":
		addr := uint64(0)
		for i := 0; i < *n; i++ {
			h.Access(addr % uint64(wsBytes))
			addr += 8
		}
	case "random":
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *n; i++ {
			h.Access(uint64(rng.Int63n(wsBytes)))
		}
	case "stride":
		addr := uint64(0)
		for i := 0; i < *n; i++ {
			h.Access(addr % uint64(wsBytes))
			addr += uint64(*stride)
		}
	case "pointer":
		// Dependent pointer chase over a shuffled permutation — the worst
		// case for any prefetcher-free hierarchy.
		slots := wsBytes / 64
		if slots < 2 {
			slots = 2
		}
		perm := rand.New(rand.NewSource(*seed)).Perm(int(slots))
		cur := 0
		for i := 0; i < *n; i++ {
			h.Access(uint64(cur) * 64)
			cur = perm[cur]
		}
	case "stdin":
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			addr, err := strconv.ParseUint(strings.TrimPrefix(line, "0x"), 16, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad address %q: %v\n", line, err)
				os.Exit(1)
			}
			h.Access(addr)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	fmt.Printf("machine: %s\npattern: %s, working set %s\n\n", m, *pattern, *ws)
	for _, s := range h.Levels() {
		fmt.Println("  " + s.String())
	}
	fmt.Printf("\naccesses: %d\navg cycles/access: %.2f\n", h.Accesses(), h.Cycles()/float64(h.Accesses()))
}

func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
