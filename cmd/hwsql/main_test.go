package main

import "testing"

func newSession(t *testing.T) *session {
	t.Helper()
	s := &session{}
	if err := s.setMachine("laptop-1s4c"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetMachine(t *testing.T) {
	s := &session{}
	if err := s.setMachine("nope"); err == nil {
		t.Fatal("unknown machine should fail")
	}
	if err := s.setMachine("server-2s8c"); err != nil {
		t.Fatal(err)
	}
	if s.machine.Name != "server-2s8c" || s.engine == nil {
		t.Fatal("machine not applied")
	}
}

func TestExecFlow(t *testing.T) {
	s := newSession(t)
	steps := []string{
		"help",
		"gen 5000",
		"q6 fused",
		"q6 vectorized",
		"q1 volcano",
		"join 1000 4000 auto",
		"machine numa-4s16c",
		"", // blank line is a no-op
	}
	for _, cmd := range steps {
		if err := s.exec(cmd); err != nil {
			t.Fatalf("exec(%q): %v", cmd, err)
		}
	}
}

func TestExecErrors(t *testing.T) {
	s := newSession(t)
	bad := []string{
		"frobnicate",
		"machine",
		"gen",
		"gen notanumber",
		"gen -5",
		"q6",           // missing engine
		"q6 fused",     // no table generated yet
		"join 1 2",     // wrong arity
		"join a b npo", // bad sizes
	}
	for _, cmd := range bad {
		if err := s.exec(cmd); err == nil {
			t.Errorf("exec(%q) should fail", cmd)
		}
	}
	// Unknown engine fails after a table exists.
	if err := s.exec("gen 100"); err != nil {
		t.Fatal(err)
	}
	if err := s.exec("q6 bogus"); err == nil {
		t.Error("unknown engine should fail")
	}
	if err := s.exec("join 100 400 bogus"); err == nil {
		t.Error("unknown join algorithm should fail")
	}
}

func TestFmtBytes(t *testing.T) {
	if got := fmtBytes(512); got != "0.5 KiB" {
		t.Errorf("fmtBytes(512) = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.0 MiB" {
		t.Errorf("fmtBytes(3MiB) = %q", got)
	}
	if got := fmtBytes(2 << 30); got != "2.0 GiB" {
		t.Errorf("fmtBytes(2GiB) = %q", got)
	}
}

func TestNewCommands(t *testing.T) {
	s := newSession(t)
	good := []string{
		"sort 10000",
		"compress 20000 256",
		"advise 100000 8 100 0",
		"advise 100000 8 0 50000",
		"advise 100000 8 10 50000",
	}
	for _, cmd := range good {
		if err := s.exec(cmd); err != nil {
			t.Fatalf("exec(%q): %v", cmd, err)
		}
	}
	bad := []string{
		"sort", "sort x", "sort -1",
		"compress 10", "compress x 10", "compress 10 0",
		"advise 1 2 3", "advise a 2 3 4", "advise 0 0 0 0",
	}
	for _, cmd := range bad {
		if err := s.exec(cmd); err == nil {
			t.Errorf("exec(%q) should fail", cmd)
		}
	}
}
