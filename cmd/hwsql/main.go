// Command hwsql is a small interactive front end to the hwstar engine: it
// generates data and runs the built-in analytic queries on a chosen machine
// profile and execution engine, printing results alongside modeled hardware
// cost. It exists to demo the public API end to end; the experiment suite
// lives in hwbench.
//
// Commands (stdin, one per line, or as a single -c argument):
//
//	machine <name>            switch machine profile
//	gen <rows>                generate a lineitem table
//	q1 <volcano|vectorized|fused>
//	q6 <volcano|vectorized|fused>
//	join <build> <probe> <npo|radix|auto>
//	sort <n>                  radix vs comparison sort, live
//	compress <n> <domain>     encode a column, report ratio & scan trade
//	advise <rows> <cols> <scans> <points>
//	help | quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hwstar"
	"hwstar/internal/compress"
	"hwstar/internal/hw"
	"hwstar/internal/queries"
	hwsort "hwstar/internal/sort"
	"hwstar/internal/table"
	"hwstar/internal/workload"
)

type session struct {
	machine *hwstar.Machine
	engine  *hwstar.Engine
	li      *table.Table
}

func main() {
	cmd := flag.String("c", "", "run these semicolon-separated commands and exit")
	flag.Parse()

	s := &session{}
	if err := s.setMachine("server-2s8c"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cmd != "" {
		for _, line := range strings.Split(*cmd, ";") {
			if err := s.exec(strings.TrimSpace(line)); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println("hwsql — hwstar interactive shell (type 'help')")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("hwsql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line == "" {
			continue
		}
		if err := s.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func (s *session) setMachine(name string) error {
	m, ok := hw.Profiles()[name]
	if !ok {
		return fmt.Errorf("unknown machine %q", name)
	}
	e, err := hwstar.New(m)
	if err != nil {
		return err
	}
	s.machine, s.engine = m, e
	fmt.Println("machine:", m)
	return nil
}

func (s *session) exec(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "help":
		fmt.Println("commands: machine <name> | gen <rows> | q1 <engine> | q6 <engine> | join <build> <probe> <algo>")
		fmt.Println("          sort <n> | compress <n> <domain> | advise <rows> <cols> <scans> <points> | quit")
		fmt.Print("machines: ")
		for name := range hw.Profiles() {
			fmt.Print(name, " ")
		}
		fmt.Println("\nengines: volcano vectorized fused;  join algos: npo radix auto")
		return nil
	case "machine":
		if len(fields) != 2 {
			return fmt.Errorf("usage: machine <name>")
		}
		return s.setMachine(fields[1])
	case "gen":
		if len(fields) != 2 {
			return fmt.Errorf("usage: gen <rows>")
		}
		rows, err := strconv.Atoi(fields[1])
		if err != nil || rows <= 0 {
			return fmt.Errorf("bad row count %q", fields[1])
		}
		start := time.Now()
		s.li = workload.LineItem(1, rows)
		fmt.Printf("generated lineitem: %d rows, %s, in %.2fs\n",
			rows, fmtBytes(s.li.Bytes()), time.Since(start).Seconds())
		return nil
	case "q1", "q6":
		if len(fields) != 2 {
			return fmt.Errorf("usage: %s <volcano|vectorized|fused>", fields[0])
		}
		if s.li == nil {
			return fmt.Errorf("no table: run 'gen <rows>' first")
		}
		eng := queries.Engine(fields[1])
		acct := hw.NewAccount(s.machine, hw.DefaultContext())
		start := time.Now()
		if fields[0] == "q6" {
			sum, err := queries.Q6(eng, s.li, queries.DefaultQ6(), acct)
			if err != nil {
				return err
			}
			fmt.Printf("q6(%s) = %.2f\n", eng, sum)
		} else {
			rows, err := queries.Q1(eng, s.li, queries.DefaultQ1(), acct)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Printf("  %s %s  count=%-7d sum_qty=%.0f avg_price=%.2f\n",
					r.ReturnFlag, r.LineStatus, r.Count, r.SumQty, r.AvgPrice)
			}
		}
		fmt.Printf("  real: %.1fms   model: %.1f Mcycles (%.1f cyc/tuple on %s)\n",
			float64(time.Since(start).Microseconds())/1000,
			acct.TotalCycles()/1e6,
			acct.TotalCycles()/float64(s.li.NumRows()),
			s.machine.Name)
		return nil
	case "join":
		if len(fields) != 4 {
			return fmt.Errorf("usage: join <build> <probe> <npo|radix|auto>")
		}
		build, err1 := strconv.Atoi(fields[1])
		probe, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || build <= 0 || probe < 0 {
			return fmt.Errorf("bad sizes")
		}
		g := workload.GenerateJoin(workload.JoinConfig{Seed: 7, BuildRows: build, ProbeRows: probe})
		start := time.Now()
		res, err := s.engine.HashJoin(context.Background(), g.BuildKeys, g.BuildVals, g.ProbeKeys, g.ProbeVals, hwstar.JoinAlgorithm(fields[3]))
		if err != nil {
			return err
		}
		fmt.Printf("join(%s): %d matches, real %.1fms, simulated makespan %.1f Mcycles on %d cores\n",
			res.Algorithm, res.Matches,
			float64(time.Since(start).Microseconds())/1000,
			res.SimCycles/1e6, s.engine.Workers())
		return nil
	case "sort":
		if len(fields) != 2 {
			return fmt.Errorf("usage: sort <n>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad size %q", fields[1])
		}
		keys := workload.UniformInts(11, n, 1<<60)
		cmpKeys := append([]int64(nil), keys...)
		start := time.Now()
		hwsort.Comparison(cmpKeys)
		cmpMs := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		hwsort.Radix(keys, hwsort.RadixOptions{}, s.machine)
		radixMs := float64(time.Since(start).Microseconds()) / 1000
		fmt.Printf("sort %d keys: comparison %.1fms, radix %.1fms (%.1fx)\n", n, cmpMs, radixMs, cmpMs/radixMs)
		return nil
	case "compress":
		if len(fields) != 3 {
			return fmt.Errorf("usage: compress <n> <domain>")
		}
		n, err1 := strconv.Atoi(fields[1])
		domain, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil || n <= 0 || domain <= 0 {
			return fmt.Errorf("bad arguments")
		}
		data := workload.UniformInts(12, n, domain)
		c := compress.Encode(data)
		busy := hw.ExecContext{ActiveCoresOnSocket: s.machine.CoresPerSocket, InterferenceFactor: 1}
		raw := s.machine.Cycles(compress.ScanWorkRaw(int64(n)), busy)
		comp := s.machine.Cycles(c.ScanWork(), busy)
		fmt.Printf("compress %d values (domain %d): ratio %.1fx; busy-socket scan raw %.1f vs compressed %.1f Mcycles\n",
			n, domain, c.Ratio(), raw/1e6, comp/1e6)
		return nil
	case "advise":
		if len(fields) != 5 {
			return fmt.Errorf("usage: advise <rows> <cols> <scans> <points>")
		}
		var nums [4]int
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(fields[i+1])
			if err != nil || v < 0 {
				return fmt.Errorf("bad argument %q", fields[i+1])
			}
			nums[i] = v
		}
		rows, cols, scans, points := nums[0], nums[1], nums[2], nums[3]
		prof := hwstar.AccessProfile{Scans: scans, Points: points}
		if scans > 0 {
			prof.ScanCols = []int{0}
		}
		if points > 0 {
			for c := 0; c < cols; c++ {
				prof.PointCols = append(prof.PointCols, c)
			}
		}
		best, costs, err := s.engine.AdviseLayout(rows, cols, prof)
		if err != nil {
			return err
		}
		fmt.Printf("advise %dx%d (%d scans, %d points): %s  (NSM %.1fM, DSM %.1fM, PAX %.1fM cycles)\n",
			rows, cols, scans, points, best,
			costs[hwstar.NSM]/1e6, costs[hwstar.DSM]/1e6, costs[hwstar.PAX]/1e6)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", fields[0])
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
}
