// Command hwbench runs the hwstar experiment suite (E1–E26 from DESIGN.md)
// and prints each experiment's result tables. Every table corresponds to one
// claim of the ICDE 2013 keynote "Hardware killed the software star" made
// measurable.
//
// Usage:
//
//	hwbench [-scale f] [-csv dir] [-frontend-json file] [-store-json file] [-serve-json file] [-cluster-json file] [-list] [experiment ids...]
//
// With no ids, the full suite runs. Scale 1 is the full configuration;
// smaller values shrink data sizes proportionally for quick runs.
// -frontend-json runs E23 (the multi-tenant frontend isolation experiment)
// and writes its structured result — per-tenant p50/p99, throughput, and
// shed/rate-limited counts — as JSON, the BENCH_frontend.json artifact.
// -store-json runs E24 (the durable-tier crash-recovery experiment) and
// writes its structured result — kill/recover schedule outcomes, recovery
// time vs data volume, and checkpoint interference on interactive p99 — as
// JSON, the BENCH_store.json artifact.
// -serve-json runs E25 (the vectorized compressed serving experiment) and
// writes its structured result — row vs vectorized cycles per query,
// controller convergence, chaos-mix tail latency — as JSON, the
// BENCH_serve.json artifact.
// -cluster-json runs E26 (the sharded serving tier experiment) and writes
// its structured result — node-kill/failover cycles with zero lost
// committed answers, hedged-dispatch tail bounds, typed partial results on
// total replica loss, and distributed join strategy choices — as JSON, the
// BENCH_cluster.json artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hwstar/internal/experiments"
)

// writeFrontendBench runs E23 and writes its structured result as indented
// JSON to path.
func writeFrontendBench(path string, cfg experiments.Config) error {
	b, tables, err := experiments.RunE23(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	fmt.Printf("    wrote %s (interactive p99 %.2fms solo vs %.2fms contended, %.2fx)\n\n",
		path, b.SoloP99Ms, b.DuoP99Ms, b.P99Ratio)
	return nil
}

// writeStoreBench runs E24 and writes its structured result as indented
// JSON to path.
func writeStoreBench(path string, cfg experiments.Config) error {
	b, tables, err := experiments.RunE24(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	fmt.Printf("    wrote %s (%d kills over %d recoveries, 0 lost versions; checkpoint p99 %.2fx baseline)\n\n",
		path, b.Crash.InjectedCrashes, b.Crash.Recoveries, b.Interference.P99Ratio)
	return nil
}

// writeServeBench runs E25 and writes its structured result as indented
// JSON to path.
func writeServeBench(path string, cfg experiments.Config) error {
	b, tables, err := experiments.RunE25(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	fmt.Printf("    wrote %s (vectorized %.2fx over row-at-a-time; chaos p99 %.2fx row)\n\n",
		path, b.Speedup, b.Chaos.P99Ratio)
	return nil
}

// writeClusterBench runs E26 and writes its structured result as indented
// JSON to path.
func writeClusterBench(path string, cfg experiments.Config) error {
	b, tables, err := experiments.RunE26(cfg)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return err
	}
	fmt.Printf("    wrote %s (%d kill/failover cycles, %d lost answers; straggler p99 %.2fx no-fault)\n\n",
		path, b.Failover.Cycles, b.Failover.LostAnswers, b.Hedge.P99Ratio)
	return nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "experiment size multiplier (1 = full size)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	frontendJSON := flag.String("frontend-json", "", "run E23 and write its per-tenant bench result to this JSON file, then exit")
	storeJSON := flag.String("store-json", "", "run E24 and write its durability bench result to this JSON file, then exit")
	serveJSON := flag.String("serve-json", "", "run E25 and write its vectorized-serving bench result to this JSON file, then exit")
	clusterJSON := flag.String("cluster-json", "", "run E26 and write its sharded-tier bench result to this JSON file, then exit")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n      claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	if *frontendJSON != "" {
		if err := writeFrontendBench(*frontendJSON, experiments.Config{Scale: *scale}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *storeJSON != "" {
		if err := writeStoreBench(*storeJSON, experiments.Config{Scale: *scale}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *serveJSON != "" {
		if err := writeServeBench(*serveJSON, experiments.Config{Scale: *scale}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *clusterJSON != "" {
		if err := writeClusterBench(*clusterJSON, experiments.Config{Scale: *scale}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var toRun []experiments.Experiment
	if flag.NArg() == 0 {
		toRun = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	cfg := experiments.Config{Scale: *scale}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	failed := false
	for _, e := range toRun {
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("    claim: %s\n\n", e.Claim)
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for ti, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
			if *csvDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), ti)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					failed = true
					continue
				}
				if err := t.CSV(f); err != nil {
					fmt.Fprintln(os.Stderr, err)
					failed = true
				}
				f.Close()
			}
		}
		fmt.Printf("    (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
